package catalog

import (
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestAnalyzeAndEstimate(t *testing.T) {
	c := New(Config{Buckets: 40, Regions: 900})
	d := synthetic.Charminar(3000, 1000, 10, 1)
	if err := c.Analyze("roads.geom", d); err != nil {
		t.Fatal(err)
	}
	got, err := c.Estimate("roads.geom", geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if got < float64(d.N())*0.9 || got > float64(d.N())*1.1 {
		t.Fatalf("covering estimate = %g, want ~%d", got, d.N())
	}
	if _, err := c.Estimate("missing", geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("estimate on missing stats should fail")
	}
	if err := c.Analyze("", d); err == nil {
		t.Fatal("empty name should fail")
	}
}

func TestNamesDropHistogram(t *testing.T) {
	c := New(Config{Buckets: 10, Regions: 100})
	d := synthetic.Uniform(500, 100, 1, 5, 2)
	for _, n := range []string{"b", "a"} {
		if err := c.Analyze(n, d); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if c.Histogram("a") == nil {
		t.Fatal("Histogram(a) nil")
	}
	if c.Histogram("zzz") != nil {
		t.Fatal("Histogram(zzz) should be nil")
	}
	if !c.Drop("a") || c.Drop("a") {
		t.Fatal("Drop semantics broken")
	}
	if len(c.Names()) != 1 {
		t.Fatalf("Names after drop = %v", c.Names())
	}
}

func TestStalenessPolicy(t *testing.T) {
	c := New(Config{Buckets: 10, Regions: 100, RebuildAt: 0.3})
	if !c.Stale("missing") {
		t.Fatal("missing stats must be stale")
	}
	d := synthetic.Uniform(100, 100, 1, 5, 3)
	if err := c.Analyze("t", d); err != nil {
		t.Fatal(err)
	}
	if c.Stale("t") {
		t.Fatal("fresh stats must not be stale")
	}
	for i := 0; i < 50; i++ {
		c.NoteInsert("t", geom.NewRect(10, 10, 12, 12))
	}
	if !c.Stale("t") {
		t.Fatal("50 churn over 150 live should exceed 0.3")
	}
	// Note* on missing names are no-ops.
	c.NoteInsert("missing", geom.NewRect(0, 0, 1, 1))
	c.NoteDelete("missing", geom.NewRect(0, 0, 1, 1))
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := New(Config{Buckets: 20, Regions: 400})
	d := synthetic.Clusters(2000, 3, 500, 0.05, 1, 8, 4)
	names := []string{"plain", "with space", "slash/and.dot", "pct%name"}
	for _, n := range names {
		if err := c.Analyze(n, d); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	back := New(Config{})
	if err := back.Load(dir); err != nil {
		t.Fatal(err)
	}
	got := back.Names()
	if len(got) != len(names) {
		t.Fatalf("loaded %v", got)
	}
	q := geom.NewRect(100, 100, 300, 300)
	for _, n := range names {
		a, err := c.Estimate(n, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Estimate(n, q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%q: estimates differ after reload: %g vs %g", n, a, b)
		}
	}
	if err := back.Load(dir + "/nonexistent"); err == nil {
		t.Fatal("loading missing dir should fail")
	}
}

func TestNameEncoding(t *testing.T) {
	for _, name := range []string{"simple", "a b", "x/y", "100%", "ünïcode", ""} {
		enc := encodeName(name)
		dec, err := decodeName(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if dec != name {
			t.Fatalf("round trip %q -> %q -> %q", name, enc, dec)
		}
	}
	if _, err := decodeName("%g"); err == nil {
		t.Fatal("truncated escape should fail")
	}
	if _, err := decodeName("%zz"); err == nil {
		t.Fatal("bad hex should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{Buckets: 10, Regions: 100})
	d := synthetic.Uniform(500, 100, 1, 5, 5)
	if err := c.Analyze("t", d); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := geom.NewRect(0, 0, 50, 50)
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					if _, err := c.Estimate("t", q); err != nil {
						t.Error(err)
						return
					}
				case 1:
					c.NoteInsert("t", geom.NewRect(1, 1, 3, 3))
				case 2:
					c.Stale("t")
				case 3:
					c.NoteDelete("t", geom.NewRect(1, 1, 3, 3))
				}
			}
		}(g)
	}
	wg.Wait()
}
