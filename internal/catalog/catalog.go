// Package catalog is the statistics catalog a spatial database system
// would wrap around the estimators: named per-attribute histograms
// with ANALYZE-style (re)builds, churn-driven staleness policies,
// concurrent read access, and persistence to a directory.
//
// The catalog owns the policy questions the paper leaves to the
// system: which technique to use (Min-Skew by default), how many
// buckets, and when to rebuild.
package catalog

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Config sets the catalog's statistics policy.
type Config struct {
	// Buckets per histogram (the paper's query-processor budget of a
	// few hundred bytes corresponds to 50-200). Default 100.
	Buckets int
	// Regions for Min-Skew construction. Default core.DefaultRegions.
	Regions int
	// Refinements for Min-Skew progressive refinement. Default 0.
	Refinements int
	// RebuildAt is the staleness fraction above which Stale reports
	// a rebuild is due. Default 0.2.
	RebuildAt float64
	// Clock times ANALYZE builds for telemetry. Default vclock.Real();
	// faultsim injects its Sim clock so build-duration observations are
	// replay-deterministic.
	Clock vclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Buckets == 0 {
		c.Buckets = 100
	}
	if c.Regions == 0 {
		c.Regions = core.DefaultRegions
	}
	if c.RebuildAt == 0 {
		c.RebuildAt = 0.2
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	return c
}

// Catalog holds named spatial statistics. All methods are safe for
// concurrent use.
type Catalog struct {
	cfg Config

	mu     sync.RWMutex
	stats  map[string]*core.BucketEstimator
	traces map[string]*telemetry.BuildTrace

	// Telemetry (nil until EnableTelemetry; all no-ops then). The
	// metric fields are read and written only under mu.
	reg            *telemetry.Registry
	analyzeSeconds *telemetry.Histogram
	analyzes       *telemetry.Counter
	buildSplits    *telemetry.Counter
	churn          *telemetry.Counter
	histograms     *telemetry.Gauge
}

// New creates an empty catalog.
func New(cfg Config) *Catalog {
	return &Catalog{
		cfg:    cfg.withDefaults(),
		stats:  make(map[string]*core.BucketEstimator),
		traces: make(map[string]*telemetry.BuildTrace),
	}
}

// EnableTelemetry registers the catalog's metrics in reg: ANALYZE
// durations and counts, per-statistic staleness gauges, churn totals,
// and build-split counters. Analyze additionally starts retaining a
// structured Min-Skew construction trace per attribute (see
// BuildTrace). A nil reg leaves telemetry disabled.
func (c *Catalog) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.analyzeSeconds = reg.Histogram("catalog_analyze_seconds",
		"Duration of ANALYZE statistics builds.", telemetry.DefaultLatencyBuckets)
	c.analyzes = reg.Counter("catalog_analyze_total",
		"Statistics builds and rebuilds.")
	c.buildSplits = reg.Counter("catalog_build_splits_total",
		"Min-Skew greedy splits performed across all builds.")
	c.churn = reg.Counter("catalog_churn_total",
		"Inserts and deletes absorbed by live statistics.")
	c.histograms = reg.Gauge("catalog_histograms",
		"Attributes with live statistics.")
}

// staleGaugeLocked returns the per-statistic staleness gauge; callers
// hold c.mu (the registry has its own lock, acquired strictly after
// c.mu everywhere in this package).
func (c *Catalog) staleGaugeLocked(name string) *telemetry.Gauge {
	if c.reg == nil {
		return nil
	}
	return c.reg.Gauge("catalog_stale_fraction",
		"Churn absorbed since the last ANALYZE, relative to the row count.",
		telemetry.Label{Key: "stat", Value: name})
}

// Analyze builds (or rebuilds) the statistics for the named attribute
// from the given data using the configured Min-Skew policy. It is
// AnalyzeContext without a deadline.
func (c *Catalog) Analyze(name string, d *dataset.Distribution) error {
	return c.AnalyzeContext(context.Background(), name, d)
}

// AnalyzeContext is Analyze under a context: a long statistics build
// is abandoned as soon as ctx is cancelled or its deadline expires,
// returning the context's error. The Min-Skew sweep itself cannot be
// torn down mid-split, so on cancellation the build goroutine runs to
// completion in the background and its result is discarded — the
// caller gets control back immediately and the catalog is unchanged.
func (c *Catalog) AnalyzeContext(ctx context.Context, name string, d *dataset.Distribution) error {
	if name == "" {
		return fmt.Errorf("catalog: empty statistics name")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("catalog: analyze %q: %w", name, err)
	}
	c.mu.RLock()
	enabled := c.reg != nil
	c.mu.RUnlock()
	var tr *telemetry.BuildTrace
	if enabled {
		tr = &telemetry.BuildTrace{}
	}
	start := c.cfg.Clock.Now()
	type buildResult struct {
		hist *core.BucketEstimator
		err  error
	}
	// Buffered so an abandoned build can deliver and exit.
	ch := make(chan buildResult, 1)
	go func() {
		hist, err := core.NewMinSkew(d, core.MinSkewConfig{
			Buckets:     c.cfg.Buckets,
			Regions:     c.cfg.Regions,
			Refinements: c.cfg.Refinements,
			Trace:       tr,
		})
		ch <- buildResult{hist: hist, err: err}
	}()
	var hist *core.BucketEstimator
	select {
	case <-ctx.Done():
		return fmt.Errorf("catalog: analyze %q: %w", name, ctx.Err())
	case res := <-ch:
		if res.err != nil {
			return fmt.Errorf("catalog: analyze %q: %v", name, res.err)
		}
		hist = res.hist
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats[name] = hist
	if tr != nil {
		c.traces[name] = tr
	}
	c.analyzeSeconds.Observe(c.cfg.Clock.Since(start).Seconds())
	c.analyzes.Inc()
	c.buildSplits.Add(uint64(tr.Splits()))
	c.histograms.Set(float64(len(c.stats)))
	c.staleGaugeLocked(name).Set(hist.StaleFraction())
	return nil
}

// BuildTrace returns the structured construction trace of the named
// attribute's last Analyze, or nil when telemetry is disabled or the
// attribute was never analyzed (loaded statistics carry no trace).
func (c *Catalog) BuildTrace(name string) *telemetry.BuildTrace {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.traces[name]
}

// Estimate returns the estimated result size of q against the named
// attribute's statistics.
func (c *Catalog) Estimate(name string, q geom.Rect) (float64, error) {
	// The read lock must cover the histogram walk itself, not just the
	// map lookup: NoteInsert/NoteDelete mutate bucket state under the
	// write lock, and BucketEstimator's maintenance contract requires
	// external synchronization against concurrent Estimates.
	c.mu.RLock()
	defer c.mu.RUnlock()
	hist, ok := c.stats[name]
	if !ok {
		return 0, fmt.Errorf("catalog: no statistics for %q", name)
	}
	return hist.Estimate(q), nil
}

// NoteInsert propagates a data insert into the named statistics (a
// no-op if the attribute has no statistics yet).
func (c *Catalog) NoteInsert(name string, r geom.Rect) {
	c.mu.Lock()
	if hist, ok := c.stats[name]; ok {
		hist.Insert(r)
		c.churn.Inc()
		c.staleGaugeLocked(name).Set(hist.StaleFraction())
	}
	c.mu.Unlock()
}

// NoteDelete propagates a data delete into the named statistics.
func (c *Catalog) NoteDelete(name string, r geom.Rect) {
	c.mu.Lock()
	if hist, ok := c.stats[name]; ok {
		hist.Delete(r)
		c.churn.Inc()
		c.staleGaugeLocked(name).Set(hist.StaleFraction())
	}
	c.mu.Unlock()
}

// Stale reports whether the named statistics have absorbed enough
// churn that a rebuild is due per the configured policy. Unknown names
// report true: missing statistics are maximally stale.
func (c *Catalog) Stale(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	hist, ok := c.stats[name]
	if !ok {
		return true
	}
	return hist.StaleFraction() >= c.cfg.RebuildAt
}

// Names returns the attributes with statistics, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.stats))
	for n := range c.stats {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Histogram returns the named histogram for inspection, or nil.
func (c *Catalog) Histogram(name string) *core.BucketEstimator {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats[name]
}

// Drop removes the named statistics; it reports whether they existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.stats[name]
	delete(c.stats, name)
	delete(c.traces, name)
	if ok {
		c.histograms.Set(float64(len(c.stats)))
	}
	return ok
}

// statExt is the file extension of persisted histograms.
const statExt = ".sphist"

// Save persists every histogram to dir (created if needed), one file
// per attribute. Names are encoded so arbitrary attribute names map to
// safe file names.
func (c *Catalog) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("catalog: %v", err)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for name, hist := range c.stats {
		path := filepath.Join(dir, encodeName(name)+statExt)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("catalog: save %q: %v", name, err)
		}
		if _, err := hist.WriteTo(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return fmt.Errorf("catalog: save %q: %v", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("catalog: save %q: %v", name, err)
		}
	}
	return nil
}

// Load reads every persisted histogram from dir into the catalog,
// replacing same-named entries. The attribute name is carried by the
// file name (the name inside the file records the technique).
func (c *Catalog) Load(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("catalog: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), statExt) {
			continue
		}
		name, err := decodeName(strings.TrimSuffix(e.Name(), statExt))
		if err != nil {
			return fmt.Errorf("catalog: bad statistics file name %q: %v", e.Name(), err)
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("catalog: load %q: %v", name, err)
		}
		hist, err := core.ReadHistogram(f)
		_ = f.Close() // read-only file; the parse error is what matters
		if err != nil {
			return fmt.Errorf("catalog: load %q: %v", name, err)
		}
		c.mu.Lock()
		c.stats[name] = hist
		c.histograms.Set(float64(len(c.stats)))
		c.mu.Unlock()
	}
	return nil
}

// encodeName hex-escapes bytes that are unsafe in file names.
func encodeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
			b.WriteByte(ch)
		default:
			fmt.Fprintf(&b, "%%%02x", ch)
		}
	}
	return b.String()
}

// decodeName reverses encodeName.
func decodeName(enc string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(enc); i++ {
		if enc[i] != '%' {
			b.WriteByte(enc[i])
			continue
		}
		if i+2 >= len(enc) {
			return "", fmt.Errorf("truncated escape")
		}
		var v int
		if _, err := fmt.Sscanf(enc[i+1:i+3], "%02x", &v); err != nil {
			return "", fmt.Errorf("bad escape %q", enc[i:i+3])
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}
