package catalog

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

// TestCatalogRaceStress drives every catalog entry point from
// concurrent goroutines: estimators and staleness probes read while
// churn notes, re-analyzes, drops, and save/load cycles write. Under
// -race this exercises the catalog's lock discipline across every
// reader/writer pairing, including Estimate (which must hold the read
// lock across the histogram walk, not just the map lookup).
func TestCatalogRaceStress(t *testing.T) {
	d := synthetic.Uniform(2000, 1000, 1, 20, 7)
	c := New(Config{Buckets: 40, Regions: 400})
	if err := c.Analyze("roads", d); err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze("rivers", d); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var wg sync.WaitGroup

	// Readers: estimates, staleness probes, listings.
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				x, y := rng.Float64()*1000, rng.Float64()*1000
				q := geom.NewRect(x, y, x+50, y+50)
				if est, err := c.Estimate("roads", q); err == nil && est < 0 {
					t.Errorf("negative estimate %g", est)
					return
				}
				c.Stale("roads")
				c.Names()
				c.Histogram("rivers")
			}
		}(int64(p))
	}

	// Churn writers: inserts and deletes against both attributes.
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 400; i++ {
				x, y := rng.Float64()*1000, rng.Float64()*1000
				r := geom.NewRect(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
				if i%3 == 0 {
					c.NoteDelete("roads", r)
				} else {
					c.NoteInsert("roads", r)
				}
				c.NoteInsert("rivers", r)
			}
		}(int64(p))
	}

	// Rebuilder: re-analyzes and drops/recreates a third attribute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := c.Analyze("roads", d); err != nil {
				t.Error(err)
				return
			}
			if err := c.Analyze("parcels", d); err != nil {
				t.Error(err)
				return
			}
			c.Drop("parcels")
		}
	}()

	// Persister: save/load cycles against a temp directory.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := c.Save(dir); err != nil {
				t.Error(err)
				return
			}
			if err := c.Load(dir); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()

	// The catalog must still answer coherently after the storm.
	names := c.Names()
	if len(names) < 2 || names[0] != "parcels" && !strings.HasPrefix(names[0], "r") {
		t.Fatalf("unexpected names after stress: %v", names)
	}
	if _, err := c.Estimate("roads", geom.NewRect(0, 0, 1000, 1000)); err != nil {
		t.Fatalf("whole-space estimate after stress: %v", err)
	}
}
