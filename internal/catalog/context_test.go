package catalog

import (
	"context"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/synthetic"
)

func TestAnalyzeContextCancelledUpFront(t *testing.T) {
	c := New(Config{Buckets: 40, Regions: 900})
	d := synthetic.Charminar(1000, 1000, 10, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.AnalyzeContext(ctx, "roads", d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := c.Estimate("roads", geom.NewRect(0, 0, 1, 1)); err == nil {
		t.Fatal("cancelled analyze must not install statistics")
	}
}

func TestAnalyzeContextDeadlinePreservesOldStats(t *testing.T) {
	c := New(Config{Buckets: 40, Regions: 900})
	d := synthetic.Charminar(1000, 1000, 10, 3)
	if err := c.Analyze("roads", d); err != nil {
		t.Fatal(err)
	}
	before, err := c.Estimate("roads", geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline abandons the rebuild; the live
	// statistics must be untouched.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	if err := c.AnalyzeContext(ctx, "roads", d); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	after, err := c.Estimate("roads", geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !geom.FloatEq(before, after) {
		t.Fatalf("abandoned rebuild changed estimates: %g -> %g", before, after)
	}
}

func TestAnalyzeContextBackgroundMatchesAnalyze(t *testing.T) {
	d := synthetic.Charminar(1000, 1000, 10, 4)
	c1 := New(Config{Buckets: 40, Regions: 900})
	c2 := New(Config{Buckets: 40, Regions: 900})
	if err := c1.Analyze("t", d); err != nil {
		t.Fatal(err)
	}
	if err := c2.AnalyzeContext(context.Background(), "t", d); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(100, 100, 600, 600)
	e1, err := c1.Estimate("t", q)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Estimate("t", q)
	if err != nil {
		t.Fatal(err)
	}
	if !geom.FloatEq(e1, e2) {
		t.Fatalf("Analyze %g != AnalyzeContext %g", e1, e2)
	}
}
