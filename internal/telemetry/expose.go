package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// stickyWriter latches the first write error so the exposition code
// can print freely and report the failure once. (The io.Writer may be
// a network connection; every write can fail.)
type stickyWriter struct {
	w   io.Writer
	err error
}

func (sw *stickyWriter) printf(format string, args ...interface{}) {
	if sw.err == nil {
		_, sw.err = fmt.Fprintf(sw.w, format, args...)
	}
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): # HELP and # TYPE lines per
// metric name, one sample line per series, and the conventional
// _bucket/_sum/_count expansion with cumulative le buckets for
// histograms. Series are sorted by name then labels, so output is
// deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	sw := &stickyWriter{w: w}
	prevName := ""
	for _, m := range r.snapshot() {
		if m.name != prevName {
			if m.help != "" {
				sw.printf("# HELP %s %s\n", m.name, m.help)
			}
			sw.printf("# TYPE %s %s\n", m.name, m.kind)
			prevName = m.name
		}
		switch m.kind {
		case kindCounter:
			sw.printf("%s %d\n", seriesKey(m.name, m.labels), m.counter.Value())
		case kindGauge:
			sw.printf("%s %s\n", seriesKey(m.name, m.labels), formatFloat(m.gauge.Value()))
		case kindHistogram:
			writePromHistogram(sw, m)
		}
	}
	return sw.err
}

// writePromHistogram emits the cumulative bucket series plus _sum and
// _count for one histogram series.
func writePromHistogram(sw *stickyWriter, m *metric) {
	h := m.hist
	bounds := h.bounds
	cells := h.BucketCounts()
	var cum uint64
	for i, c := range cells {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		ls := append(append([]Label(nil), m.labels...), Label{Key: "le", Value: le})
		sw.printf("%s %d\n", seriesKey(m.name+"_bucket", ls), cum)
	}
	sw.printf("%s %s\n", seriesKey(m.name+"_sum", m.labels), formatFloat(h.Sum()))
	sw.printf("%s %d\n", seriesKey(m.name+"_count", m.labels), h.Count())
}

// WriteJSON writes every registered metric as one flat JSON object in
// the spirit of expvar's /debug/vars: keys are the full series names
// (base name plus rendered labels), counters and gauges map to
// numbers, histograms to {"count", "sum", "buckets"} objects whose
// buckets are cumulative keyed by upper bound. Keys are sorted, so
// output is deterministic. A nil registry writes "{}".
func (r *Registry) WriteJSON(w io.Writer) error {
	sw := &stickyWriter{w: w}
	sw.printf("{")
	for i, m := range r.snapshot() {
		if i > 0 {
			sw.printf(",")
		}
		sw.printf("\n  %s: ", strconv.Quote(seriesKey(m.name, m.labels)))
		switch m.kind {
		case kindCounter:
			sw.printf("%d", m.counter.Value())
		case kindGauge:
			sw.printf("%s", jsonFloat(m.gauge.Value()))
		case kindHistogram:
			writeJSONHistogram(sw, m.hist)
		}
	}
	sw.printf("\n}\n")
	return sw.err
}

// writeJSONHistogram emits one histogram value object.
func writeJSONHistogram(sw *stickyWriter, h *Histogram) {
	sw.printf("{\"count\": %d, \"sum\": %s, \"buckets\": {", h.Count(), jsonFloat(h.Sum()))
	cells := h.BucketCounts()
	var cum uint64
	for i, c := range cells {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if i > 0 {
			sw.printf(", ")
		}
		sw.printf("%s: %d", strconv.Quote(le), cum)
	}
	sw.printf("}}")
}

// formatFloat renders a float64 in the shortest exact form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonFloat renders a float64 as a JSON value; NaN and the infinities
// are not representable as JSON numbers and become quoted strings.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.Quote(formatFloat(v))
	}
	return formatFloat(v)
}
