package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are exponential-ish upper bounds in seconds
// suitable for estimate and query latencies, from one microsecond to
// ten seconds (anything slower lands in the implicit +Inf bucket).
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-boundary value histogram: observation v is
// counted in the first bucket whose upper bound satisfies v <= bound,
// with an implicit +Inf overflow bucket. Observe is lock-free: one
// binary search over the (immutable) bounds plus three atomic updates.
// A nil *Histogram is a no-op.
//
// The cells are updated independently, so a concurrent reader can see
// a bucket increment before the matching count/sum update; exposition
// is monitoring-grade, not transactional.
type Histogram struct {
	bounds  []float64       // strictly increasing upper bounds
	cells   []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a standalone histogram with the given bucket
// upper bounds (strictly increasing, finite; an implicit +Inf bucket
// is always appended). It exists for callers that need a histogram
// outside any Registry — e.g. internal latency trackers that feed
// adaptive policies rather than exposition.
func NewHistogram(bounds []float64) (*Histogram, error) {
	return newHistogram(bounds)
}

// newHistogram validates the bounds and allocates the cells.
func newHistogram(bounds []float64) (*Histogram, error) {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("histogram bound %d is %v; bounds must be finite", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("histogram bounds must be strictly increasing: bound %d (%g) <= bound %d (%g)", i, b, i-1, bounds[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		cells:  make([]atomic.Uint64, len(bounds)+1),
	}
	return h, nil
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and fit no bucket). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bound >= v, i.e. the "le" bucket v belongs to; values above
	// every bound land at len(bounds), the +Inf cell.
	i := sort.SearchFloat64s(h.bounds, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed wall time since t0, in seconds.
// No-op on a nil receiver (time is not even read).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns a copy of the bucket upper bounds (without the
// implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// values by locating the bucket holding the target rank and
// interpolating linearly inside it (values in a bucket are assumed
// uniform, the same model Prometheus's histogram_quantile uses). Ranks
// landing in the +Inf overflow bucket return the largest finite bound.
// ok is false when the histogram is nil, empty, or q is out of range.
//
// Like BucketCounts, the read is monitoring-grade under concurrent
// observation, not transactional.
func (h *Histogram) Quantile(q float64) (v float64, ok bool) {
	if h == nil || q <= 0 || q > 1 {
		return 0, false
	}
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			if len(h.bounds) == 0 {
				return 0, false
			}
			return h.bounds[len(h.bounds)-1], true
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := float64(rank-cum) / float64(c)
		return lo + (hi-lo)*frac, true
	}
	return 0, false // unreachable: rank <= total
}

// BucketCounts returns the per-bucket (non-cumulative) observation
// counts; the last element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.cells))
	for i := range h.cells {
		out[i] = h.cells[i].Load()
	}
	return out
}
