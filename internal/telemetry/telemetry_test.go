package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every operation on nil metrics and registries must be a no-op,
	// never a panic: this is the disabled-telemetry hot path.
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", DefaultLatencyBuckets)
	var tr *BuildTrace
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	tr.Record(BuildEvent{Kind: EventSplit})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || tr.Len() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if h.Bounds() != nil || h.BucketCounts() != nil || tr.Events() != nil {
		t.Fatal("nil metrics must return nil slices")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if sb.String() != "" {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Label{Key: "table", Value: "nj"})
	b := r.Counter("dup_total", "h", Label{Key: "table", Value: "nj"})
	if a != b {
		t.Fatal("same series must return the same counter")
	}
	other := r.Counter("dup_total", "h", Label{Key: "table", Value: "ch"})
	if a == other {
		t.Fatal("different labels must return distinct counters")
	}
	other.Inc()
	if a.Value() != 0 || other.Value() != 1 {
		t.Fatal("series must count independently")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mixed", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("mixed", "h")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has space", "dash-ed", `brace{`} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bounds_test", "h", []float64{1, 2, 5})
	// Underflow: below the first bound lands in the first bucket.
	h.Observe(-100)
	h.Observe(0.5)
	// Exactly on a bound: the le semantics put it in that bound's
	// bucket, not the next.
	h.Observe(1)
	h.Observe(2)
	// Interior.
	h.Observe(3)
	// Overflow: above every bound lands in the +Inf cell.
	h.Observe(5.01)
	h.Observe(math.Inf(1))
	// NaN is dropped entirely.
	h.Observe(math.NaN())

	want := []uint64{3, 1, 1, 2} // le=1, le=2, le=5, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %d, want %d (cells %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7 (NaN dropped)", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Fatalf("sum = %g, want +Inf", h.Sum())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v must panic", bounds)
				}
			}()
			r.Histogram("bad_bounds", "h", bounds)
		}()
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", DefaultLatencyBuckets)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 || h.Sum() > 1 {
		t.Fatalf("sum = %g, want a small positive duration", h.Sum())
	}
}

// promLine matches a valid Prometheus text sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? ([0-9.eE+-]+|\+Inf|NaN)$`)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "Requests served.", Label{Key: "table", Value: `weird"nj\x`}).Add(3)
	r.Gauge("temperature", "Current temperature.").Set(-1.5)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{table="weird\"nj\\x"} 3`,
		"# TYPE temperature gauge",
		"temperature -1.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 10.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment, non-blank line must be a well-formed sample.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "h", Label{Key: "op", Value: "count"}).Add(7)
	r.Gauge("drift", "h").Set(0.25)
	h := r.Histogram("latency_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if got := decoded[`requests_total{op="count"}`]; got != float64(7) {
		t.Errorf("counter = %v, want 7", got)
	}
	if got := decoded["drift"]; got != 0.25 {
		t.Errorf("gauge = %v, want 0.25", got)
	}
	hist, ok := decoded["latency_seconds"].(map[string]interface{})
	if !ok {
		t.Fatalf("histogram value = %v", decoded["latency_seconds"])
	}
	if hist["count"] != float64(2) || hist["sum"] != 3.5 {
		t.Errorf("histogram = %v, want count=2 sum=3.5", hist)
	}
	buckets := hist["buckets"].(map[string]interface{})
	if buckets["1"] != float64(1) || buckets["+Inf"] != float64(2) {
		t.Errorf("buckets = %v, want cumulative {1:1, +Inf:2}", buckets)
	}
}

func TestBuildTrace(t *testing.T) {
	tr := &BuildTrace{}
	tr.Record(BuildEvent{Kind: EventSplit, Bucket: 0, Axis: 1, SkewBefore: 10, SkewAfter: 4, Buckets: 2})
	tr.Record(BuildEvent{Kind: EventRefine, Stage: 1, GridNX: 100, GridNY: 100})
	tr.Record(BuildEvent{Kind: EventFinalize, Buckets: 2})
	if tr.Len() != 3 || tr.Splits() != 1 {
		t.Fatalf("len=%d splits=%d, want 3/1", tr.Len(), tr.Splits())
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
	}
	// The returned slice is a copy.
	evs[0].Kind = "mutated"
	if tr.Events()[0].Kind != EventSplit {
		t.Error("Events must return a copy")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded []BuildEvent
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(decoded) != 3 || decoded[0].SkewBefore != 10 {
		t.Fatalf("round-trip mismatch: %+v", decoded)
	}
}
