package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Build-event kinds recorded by Min-Skew construction.
const (
	// EventSplit is one greedy split of a bucket into two.
	EventSplit = "split"
	// EventRefine is one progressive-refinement step: the grid is
	// quadrupled and the blocks are remapped onto it.
	EventRefine = "refine"
	// EventFinalize is the final bucket-statistics pass.
	EventFinalize = "finalize"
)

// BuildEvent is one structured record of histogram construction. Not
// every field is meaningful for every kind: splits carry the chosen
// bucket, axis, position and skew before/after; refinement steps carry
// the new grid dimensions; finalize carries the final bucket count.
type BuildEvent struct {
	// Seq is the 0-based event sequence number, assigned by Record.
	Seq int `json:"seq"`
	// Stage is the progressive-refinement stage (0 for plain Min-Skew).
	Stage int `json:"stage"`
	// Kind is one of EventSplit, EventRefine, EventFinalize.
	Kind string `json:"kind"`
	// Bucket is the index of the split bucket (-1 when not applicable,
	// e.g. the local-greedy recursion has no global bucket index).
	Bucket int `json:"bucket"`
	// Axis is the split axis: 0 = x, 1 = y (-1 when not applicable).
	Axis int `json:"axis"`
	// Pos is the split offset in grid cells along the axis.
	Pos int `json:"pos"`
	// SkewBefore and SkewAfter are the spatial skew of the split bucket
	// and the summed skew of the two halves.
	SkewBefore float64 `json:"skew_before"`
	SkewAfter  float64 `json:"skew_after"`
	// Buckets is the bucket count after the event.
	Buckets int `json:"buckets"`
	// GridNX and GridNY are the grid dimensions at the event.
	GridNX int `json:"grid_nx"`
	GridNY int `json:"grid_ny"`
}

// BuildTrace accumulates the structured events of one histogram
// construction. The zero value is ready to use; a nil *BuildTrace
// drops every record, so construction code can thread a trace
// unconditionally. Safe for concurrent use.
type BuildTrace struct {
	mu     sync.Mutex
	events []BuildEvent
}

// Record appends one event, assigning its sequence number. No-op on a
// nil receiver.
func (t *BuildTrace) Record(e BuildEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Seq = len(t.events)
	t.events = append(t.events, e)
}

// Len returns the number of recorded events (0 for nil).
func (t *BuildTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in order.
func (t *BuildTrace) Events() []BuildEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]BuildEvent(nil), t.events...)
}

// Splits returns the number of recorded split events.
func (t *BuildTrace) Splits() int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == EventSplit {
			n++
		}
	}
	return n
}

// WriteJSON writes the events as a JSON array, one event object per
// element, in recording order.
func (t *BuildTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Events()); err != nil {
		return fmt.Errorf("telemetry: write build trace: %w", err)
	}
	return nil
}

// String summarizes the trace.
func (t *BuildTrace) String() string {
	if t == nil {
		return "BuildTrace(nil)"
	}
	return fmt.Sprintf("BuildTrace{%d events, %d splits}", t.Len(), t.Splits())
}
