package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentIncrements hammers every metric kind from many
// goroutines while exposition runs concurrently; run with -race. The
// final totals must be exact: the hot path is atomic, not racy.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Exercise get-or-create from every goroutine too: the
			// registry must hand back the same series under contention.
			c := r.Counter("race_total", "h")
			gauge := r.Gauge("race_gauge", "h")
			h := r.Histogram("race_seconds", "h", []float64{0.25, 0.5, 0.75})
			tr := &BuildTrace{}
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(float64(i%4) / 4.0)
				if i%100 == 0 {
					tr.Record(BuildEvent{Kind: EventSplit})
				}
			}
		}(g)
	}
	// Concurrent exposition must not race with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if err := r.WriteJSON(io.Discard); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = goroutines * perG
	if got := r.Counter("race_total", "h").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("race_gauge", "h").Value(); got != float64(total) {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	h := r.Histogram("race_seconds", "h", nil)
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var cells uint64
	for _, c := range h.BucketCounts() {
		cells += c
	}
	if cells != total {
		t.Errorf("summed cells = %d, want %d", cells, total)
	}
}
