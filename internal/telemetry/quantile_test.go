package telemetry

import "testing"

// TestHistogramQuantile pins the interpolation model the adaptive
// hedge delay depends on: Prometheus-style linear interpolation inside
// the bucket holding the target rank, with overflow ranks reporting
// the largest finite bound.
func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}

	// Empty histogram: no quantile.
	if _, ok := h.Quantile(0.5); ok {
		t.Fatal("empty histogram must report ok=false")
	}

	// One observation per interesting bucket: 5 → (0,10], 15 and 18 →
	// (10,20], 30 → (20,40].
	for _, v := range []float64{5, 15, 18, 30} {
		h.Observe(v)
	}

	cases := []struct {
		q    float64
		want float64
	}{
		// rank 1 of 4 lands in (0,10] with count 1: 0 + 10*1/1.
		{0.25, 10},
		// rank 2 of 4 lands in (10,20] with count 2: 10 + 10*(2-1)/2.
		{0.5, 15},
		// rank 3 of 4: 10 + 10*(3-1)/2.
		{0.75, 20},
		// rank 4 of 4 lands in (20,40] with count 1: 20 + 20*1/1.
		{1.0, 40},
	}
	for _, tc := range cases {
		got, ok := h.Quantile(tc.q)
		if !ok || got != tc.want {
			t.Errorf("Quantile(%g) = (%g, %v), want (%g, true)", tc.q, got, ok, tc.want)
		}
	}

	// Out-of-range q is rejected.
	for _, q := range []float64{0, -0.5, 1.5} {
		if _, ok := h.Quantile(q); ok {
			t.Errorf("Quantile(%g) accepted an out-of-range quantile", q)
		}
	}

	// Nil receiver: no quantile, no panic.
	var nilH *Histogram
	if _, ok := nilH.Quantile(0.5); ok {
		t.Error("nil histogram must report ok=false")
	}
}

// TestHistogramQuantileOverflow: ranks landing in the +Inf overflow
// bucket cannot interpolate toward infinity; they report the largest
// finite bound as the best lower estimate.
func TestHistogramQuantileOverflow(t *testing.T) {
	h, err := NewHistogram([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5)
	h.Observe(1000) // overflows past every bound

	if got, ok := h.Quantile(1.0); !ok || got != 20 {
		t.Fatalf("overflow quantile = (%g, %v), want the largest finite bound (20, true)", got, ok)
	}
	// The non-overflow rank still interpolates normally.
	if got, ok := h.Quantile(0.5); !ok || got != 10 {
		t.Fatalf("Quantile(0.5) = (%g, %v), want (10, true)", got, ok)
	}

	// A histogram with no finite bounds at all has nothing to report.
	h2, err := NewHistogram(nil)
	if err != nil {
		t.Fatal(err)
	}
	h2.Observe(1)
	if _, ok := h2.Quantile(0.5); ok {
		t.Error("bound-less histogram must report ok=false")
	}
}
