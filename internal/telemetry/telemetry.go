// Package telemetry is the zero-dependency instrumentation core of the
// system: atomic counters and gauges, fixed-boundary histograms with a
// lock-free hot path, a named metric registry with labels, exposition
// writers in the Prometheus text format and an expvar-style JSON
// format, and structured build-event tracing for histogram
// construction (BuildTrace).
//
// # Nil-safety (the no-op contract)
//
// Every metric type in this package treats a nil receiver as a
// disabled metric: Counter.Add, Gauge.Set, Histogram.Observe and the
// BuildTrace recorders are all no-ops on nil. A nil *Registry returns
// nil metrics from its constructors. Instrumented code therefore never
// branches on an "enabled" flag — it unconditionally calls the metric
// methods, and a disabled (nil) path costs a single pointer comparison.
// Enabled hot paths pay one atomic add (counters) or an atomic load
// plus store (gauges, histogram cells); no metric operation takes a
// lock after registration.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair distinguishing a metric series, e.g.
// {Key: "table", Value: "nj"}. Keys must be valid metric identifiers;
// values may be any string (exposition writers escape them).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value
// reads 0; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricKind discriminates the registry's metric table.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered series: immutable identity plus exactly one
// live value of the matching kind.
type metric struct {
	name   string // base metric name
	labels []Label
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a named collection of metrics. Constructors are
// get-or-create: asking twice for the same (name, labels) series
// returns the same metric, so callers on dynamic paths (per-table
// series) need not cache. All methods are safe for concurrent use; a
// nil *Registry returns nil (no-op) metrics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter registered under (name, labels),
// creating it if needed. It panics if the series exists with a
// different kind or the name is invalid. Nil registries return nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindCounter, nil, labels)
	return m.counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// if needed. Nil registries return nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindGauge, nil, labels)
	return m.gauge
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bucket upper bounds if needed (bounds are
// ignored on later lookups of an existing series). Bounds must be
// strictly increasing and finite; an implicit +Inf bucket is always
// appended. Nil registries return nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, kindHistogram, bounds, labels)
	return m.hist
}

// lookup implements get-or-create for all kinds.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q on metric %q", l.Key, name))
		}
	}
	key := seriesKey(name, ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s already registered as %s, requested %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: ls, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		h, err := newHistogram(bounds)
		if err != nil {
			panic(fmt.Sprintf("telemetry: metric %s: %v", key, err))
		}
		m.hist = h
	}
	r.metrics[key] = m
	return m
}

// snapshot returns the registered metrics sorted by (name, labels).
// The metric structs are immutable after creation; their values are
// read through atomics by the exposition writers, so the lock is held
// only for the copy.
func (r *Registry) snapshot() []*metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return seriesKey("", out[i].labels) < seriesKey("", out[j].labels)
	})
	return out
}

// seriesKey renders the unique identity of a series: the base name
// plus the sorted, escaped label pairs.
func seriesKey(name string, sorted []Label) string {
	if len(sorted) == 0 {
		return name
	}
	out := name + "{"
	for i, l := range sorted {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out + "}"
}

// escapeLabelValue escapes backslash, double quote and newline per the
// Prometheus text exposition format.
func escapeLabelValue(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// validName reports whether s is a legal metric or label-key
// identifier: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
