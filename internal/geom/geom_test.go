package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("NewRect(5,7,1,2) = %v, want %v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %g, want 4", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %g, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %g, want 6", got)
	}
	if got := r.Center(); got != (Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{1, 1, 1, 1}, true}, // degenerate point is valid
		{Rect{2, 0, 1, 1}, false},
		{Rect{0, 2, 1, 1}, false},
		{Rect{math.NaN(), 0, 1, 1}, false},
		{Rect{0, 0, math.Inf(1), 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(1, 1, 3, 3), true},
		{NewRect(2, 2, 3, 3), true}, // touch at a corner counts
		{NewRect(2, 0, 4, 2), true}, // shared edge counts
		{NewRect(3, 3, 4, 4), false},
		{NewRect(-1, -1, -0.5, -0.5), false},
		{NewRect(0.5, 0.5, 1.5, 1.5), true}, // contained
		{NewRect(-1, -1, 3, 3), true},       // contains a
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestPointQueryIsDegenerateRect(t *testing.T) {
	q := PointRect(Point{1, 1})
	if q.Area() != 0 {
		t.Fatalf("point rect area = %g, want 0", q.Area())
	}
	r := NewRect(0, 0, 2, 2)
	if !r.Intersects(q) {
		t.Fatal("rect should intersect interior point query")
	}
	out := PointRect(Point{5, 5})
	if r.Intersects(out) {
		t.Fatal("rect should not intersect exterior point query")
	}
}

func TestIntersection(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 3)
	got, ok := a.Intersection(b)
	if !ok || got != NewRect(1, 1, 2, 2) {
		t.Fatalf("Intersection = %v, %v; want [(1,1),(2,2)], true", got, ok)
	}
	if _, ok := a.Intersection(NewRect(5, 5, 6, 6)); ok {
		t.Fatal("disjoint rects should have no intersection")
	}
}

func TestIntersectionArea(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.IntersectionArea(NewRect(1, 1, 3, 3)); got != 1 {
		t.Errorf("IntersectionArea = %g, want 1", got)
	}
	if got := a.IntersectionArea(NewRect(2, 2, 3, 3)); got != 0 {
		t.Errorf("touching rects intersection area = %g, want 0", got)
	}
	if got := a.IntersectionArea(NewRect(9, 9, 10, 10)); got != 0 {
		t.Errorf("disjoint rects intersection area = %g, want 0", got)
	}
}

func TestUnionAndEnlargement(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, 2, 3, 3)
	u := a.Union(b)
	if u != NewRect(0, 0, 3, 3) {
		t.Fatalf("Union = %v, want [(0,0),(3,3)]", u)
	}
	if got := a.Enlargement(b); got != 8 {
		t.Errorf("Enlargement = %g, want 8", got)
	}
	if got := a.Enlargement(NewRect(0.2, 0.2, 0.8, 0.8)); got != 0 {
		t.Errorf("Enlargement of contained rect = %g, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	bound := NewRect(0, 0, 10, 10)
	if got := NewRect(-5, -5, 5, 5).Clamp(bound); got != NewRect(0, 0, 5, 5) {
		t.Errorf("Clamp = %v, want [(0,0),(5,5)]", got)
	}
	// Fully outside rect clamps to boundary.
	got := NewRect(20, 20, 30, 30).Clamp(bound)
	if got != NewRect(10, 10, 10, 10) {
		t.Errorf("Clamp outside = %v, want degenerate at (10,10)", got)
	}
}

func TestExpand(t *testing.T) {
	r := NewRect(2, 2, 4, 4)
	if got := r.Expand(1, 2); got != NewRect(1, 0, 5, 6) {
		t.Errorf("Expand = %v, want [(1,0),(5,6)]", got)
	}
	// Excessive shrink collapses to center, stays valid.
	got := r.Expand(-5, -5)
	if !got.Valid() {
		t.Errorf("Expand shrink produced invalid rect %v", got)
	}
	if got.Width() != 0 || got.Height() != 0 {
		t.Errorf("over-shrunk rect should be degenerate, got %v", got)
	}
}

func TestMBR(t *testing.T) {
	if _, ok := MBR(nil); ok {
		t.Fatal("MBR(nil) should report empty")
	}
	rects := []Rect{NewRect(1, 1, 2, 2), NewRect(0, 3, 1, 4), NewRect(5, 0, 6, 1)}
	got, ok := MBR(rects)
	if !ok || got != NewRect(0, 0, 6, 4) {
		t.Fatalf("MBR = %v, %v; want [(0,0),(6,4)]", got, ok)
	}
}

func TestMBRPoints(t *testing.T) {
	if _, ok := MBRPoints(nil); ok {
		t.Fatal("MBRPoints(nil) should report empty")
	}
	pts := []Point{{1, 5}, {-2, 0}, {3, 3}}
	got, ok := MBRPoints(pts)
	if !ok || got != NewRect(-2, 0, 3, 5) {
		t.Fatalf("MBRPoints = %v, %v; want [(-2,0),(3,5)]", got, ok)
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Point{5, 5}, 4, 2)
	if r != NewRect(3, 4, 7, 6) {
		t.Fatalf("RectAround = %v, want [(3,4),(7,6)]", r)
	}
	if r.Center() != (Point{5, 5}) {
		t.Fatalf("center moved: %v", r.Center())
	}
}

func TestStrings(t *testing.T) {
	if s := NewRect(0, 0, 1, 2).String(); s != "[(0,0),(1,2)]" {
		t.Errorf("Rect.String = %q", s)
	}
	if s := (Point{1, 2}).String(); s != "(1,2)" {
		t.Errorf("Point.String = %q", s)
	}
}

// randRect produces rectangles with coordinates in [-100, 100] for
// property tests.
func randRect(r *rand.Rand) Rect {
	x1 := r.Float64()*200 - 100
	y1 := r.Float64()*200 - 100
	x2 := x1 + r.Float64()*50
	y2 := y1 + r.Float64()*50
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

func TestPropertyIntersectionSymmetricAndContained(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("Intersects not symmetric for %v, %v", a, b)
		}
		inter, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			t.Fatalf("Intersection ok=%v disagrees with Intersects=%v for %v, %v", ok, a.Intersects(b), a, b)
		}
		if ok {
			if !a.Contains(inter) || !b.Contains(inter) {
				t.Fatalf("intersection %v not contained in both %v and %v", inter, a, b)
			}
			if inter.Area()-a.IntersectionArea(b) > 1e-9 || a.IntersectionArea(b)-inter.Area() > 1e-9 {
				t.Fatalf("IntersectionArea mismatch: %g vs %g", a.IntersectionArea(b), inter.Area())
			}
		}
	}
}

func TestPropertyUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union %v does not contain %v and %v", u, a, b)
		}
		if u.Area() < a.Area()-1e-9 || u.Area() < b.Area()-1e-9 {
			t.Fatalf("union area %g smaller than inputs %g, %g", u.Area(), a.Area(), b.Area())
		}
		if a.Enlargement(b) < -1e-9 {
			t.Fatalf("negative enlargement %g", a.Enlargement(b))
		}
	}
}

func TestPropertyMBRContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(20)
		rects := make([]Rect, n)
		for j := range rects {
			rects[j] = randRect(rng)
		}
		m, ok := MBR(rects)
		if !ok {
			t.Fatal("MBR of non-empty input reported empty")
		}
		for _, r := range rects {
			if !m.Contains(r) {
				t.Fatalf("MBR %v does not contain %v", m, r)
			}
		}
	}
}

func TestQuickNewRectAlwaysValid(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		if math.IsNaN(x1) || math.IsNaN(y1) || math.IsNaN(x2) || math.IsNaN(y2) {
			return true // NaN inputs are out of contract
		}
		if math.IsInf(x1, 0) || math.IsInf(y1, 0) || math.IsInf(x2, 0) || math.IsInf(y2, 0) {
			return true
		}
		return NewRect(x1, y1, x2, y2).Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClampInsideBound(t *testing.T) {
	bound := NewRect(-50, -50, 50, 50)
	f := func(x1, y1, w, h float64) bool {
		if math.IsNaN(x1) || math.IsNaN(y1) || math.IsNaN(w) || math.IsNaN(h) {
			return true
		}
		r := NewRect(x1, y1, x1+math.Mod(math.Abs(w), 100), y1+math.Mod(math.Abs(h), 100))
		if !r.Valid() {
			return true
		}
		c := r.Clamp(bound)
		return c.Valid() && bound.Contains(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
