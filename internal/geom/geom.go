// Package geom provides the two-dimensional geometric primitives used
// throughout the library: points, axis-aligned rectangles, and the
// operations on them that spatial selectivity estimation needs
// (intersection tests, minimum bounding rectangles, areas, clamping).
//
// All coordinates are float64. Rectangles are closed regions
// [MinX,MaxX] x [MinY,MaxY]; rectangles that share only a boundary are
// considered intersecting, matching the paper's definition of a
// "non-empty intersection".
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle given by its lower-left (MinX, MinY)
// and upper-right (MaxX, MaxY) corners. A Rect with MinX == MaxX or
// MinY == MaxY is degenerate (a segment or a point) but still valid: the
// paper's point queries are rectangles with zero extent.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle with the given corner coordinates,
// normalizing the corners so that Min <= Max on both axes.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// RectAround returns the rectangle of the given width and height centered
// at c.
func RectAround(c Point, width, height float64) Rect {
	hw, hh := width/2, height/2
	return Rect{MinX: c.X - hw, MinY: c.Y - hh, MaxX: c.X + hw, MaxY: c.Y + hh}
}

// PointRect returns the degenerate rectangle covering exactly p. It is
// how point queries are expressed.
func PointRect(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// Valid reports whether r is a well-formed rectangle: finite coordinates
// with MinX <= MaxX and MinY <= MaxY.
func (r Rect) Valid() bool {
	if math.IsNaN(r.MinX) || math.IsNaN(r.MinY) || math.IsNaN(r.MaxX) || math.IsNaN(r.MaxY) {
		return false
	}
	if math.IsInf(r.MinX, 0) || math.IsInf(r.MinY, 0) || math.IsInf(r.MaxX, 0) || math.IsInf(r.MaxY, 0) {
		return false
	}
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether r and s share at least one point. Touching
// boundaries count as intersection.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether s lies entirely inside r (boundaries
// inclusive).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (boundaries inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersection returns the overlap of r and s and whether it is
// non-empty. When the rectangles do not intersect the zero Rect is
// returned with ok == false.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	out := Rect{
		MinX: maxf(r.MinX, s.MinX),
		MinY: maxf(r.MinY, s.MinY),
		MaxX: minf(r.MaxX, s.MaxX),
		MaxY: minf(r.MaxY, s.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// minf and maxf are branchy float min/max without math.Min/Max's NaN
// handling; rectangle coordinates are validated finite, and these sit
// on the hottest paths of the R*-tree and the estimators.
func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// IntersectionArea returns the area of the overlap of r and s, zero when
// they do not overlap.
func (r Rect) IntersectionArea(s Rect) float64 {
	w := minf(r.MaxX, s.MaxX) - maxf(r.MinX, s.MinX)
	if w <= 0 {
		return 0
	}
	h := minf(r.MaxY, s.MaxY) - maxf(r.MinY, s.MinY)
	if h <= 0 {
		return 0
	}
	return w * h
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: minf(r.MinX, s.MinX),
		MinY: minf(r.MinY, s.MinY),
		MaxX: maxf(r.MaxX, s.MaxX),
		MaxY: maxf(r.MaxY, s.MaxY),
	}
}

// Enlargement returns the increase in area required for r to contain s.
// It is the classic R-tree insertion cost.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Clamp returns r restricted to lie inside bound. If r does not
// intersect bound, the result is the degenerate rectangle at the nearest
// boundary point of bound.
func (r Rect) Clamp(bound Rect) Rect {
	out := Rect{
		MinX: clamp(r.MinX, bound.MinX, bound.MaxX),
		MinY: clamp(r.MinY, bound.MinY, bound.MaxY),
		MaxX: clamp(r.MaxX, bound.MinX, bound.MaxX),
		MaxY: clamp(r.MaxY, bound.MinY, bound.MaxY),
	}
	return out
}

// Expand returns r grown by dx on the left and right and dy on the top
// and bottom. Negative growth is permitted; the result is normalized so
// it remains valid.
func (r Rect) Expand(dx, dy float64) Rect {
	out := Rect{MinX: r.MinX - dx, MinY: r.MinY - dy, MaxX: r.MaxX + dx, MaxY: r.MaxY + dy}
	if out.MinX > out.MaxX {
		m := (out.MinX + out.MaxX) / 2
		out.MinX, out.MaxX = m, m
	}
	if out.MinY > out.MaxY {
		m := (out.MinY + out.MaxY) / 2
		out.MinY, out.MaxY = m, m
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[(%g,%g),(%g,%g)]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g,%g)", p.X, p.Y)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MBR returns the minimum bounding rectangle of the given rectangles and
// whether the input was non-empty.
func MBR(rects []Rect) (Rect, bool) {
	if len(rects) == 0 {
		return Rect{}, false
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out, true
}

// MBRPoints returns the minimum bounding rectangle of the given points
// and whether the input was non-empty.
func MBRPoints(pts []Point) (Rect, bool) {
	if len(pts) == 0 {
		return Rect{}, false
	}
	out := PointRect(pts[0])
	for _, p := range pts[1:] {
		if p.X < out.MinX {
			out.MinX = p.X
		}
		if p.X > out.MaxX {
			out.MaxX = p.X
		}
		if p.Y < out.MinY {
			out.MinY = p.Y
		}
		if p.Y > out.MaxY {
			out.MaxY = p.Y
		}
	}
	return out, true
}
