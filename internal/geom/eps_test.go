package geom

import (
	"math"
	"testing"
)

func TestFloatEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0.1 + 0.2, 0.3, true},                // classic rounding
		{1e16, 1e16 + 2, true},                // relative tolerance at scale
		{1, 1 + 1e-6, false},                  // a real difference
		{0, 1e-13, true},                      // absolute tolerance near zero
		{0, 1e-9, false},                      // beyond absolute tolerance
		{math.Inf(1), math.Inf(1), true},      // infinities equal themselves
		{math.Inf(1), math.Inf(-1), false},    //
		{math.Inf(1), math.MaxFloat64, false}, //
		{math.NaN(), math.NaN(), false},       // NaN equals nothing
		{math.NaN(), 0, false},                //
		{-0.0, 0.0, true},                     // signed zero
		{1.0 / 3.0, (1.0 - 2.0/3.0), true},    // algebraically equal
		{10000.0, 10000.0 + 2e-9, true},       // rounding at dataset scale
		{10000.0, 10001.0, false},             //
	}
	for _, c := range cases {
		if got := FloatEq(c.a, c.b); got != c.want {
			t.Errorf("FloatEq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	for _, v := range []float64{0, 1e-13, -1e-13} {
		if !IsZero(v) {
			t.Errorf("IsZero(%g) = false, want true", v)
		}
	}
	for _, v := range []float64{1e-9, -1e-9, 1, math.Inf(1), math.NaN()} {
		if IsZero(v) {
			t.Errorf("IsZero(%g) = true, want false", v)
		}
	}
}

// Degenerate rectangles — points and segments — must classify as
// zero-area under the epsilon helpers, exactly as the paper's point
// queries require.
func TestIsZeroDegenerateRects(t *testing.T) {
	pt := PointRect(Point{X: 3, Y: 4})
	if !IsZero(pt.Area()) || !IsZero(pt.Width()) || !IsZero(pt.Height()) {
		t.Errorf("point rectangle %v should have zero area/extent", pt)
	}
	seg := NewRect(0, 2, 10, 2) // horizontal segment
	if !IsZero(seg.Area()) || !IsZero(seg.Height()) {
		t.Errorf("segment %v should have zero area and height", seg)
	}
	if IsZero(seg.Width()) {
		t.Errorf("segment %v has nonzero width", seg)
	}
	// A sliver below tolerance is zero; above tolerance it is not.
	sliver := NewRect(0, 0, 1, 1e-13)
	if !IsZero(sliver.Area()) {
		t.Errorf("sliver %v area should be ~0", sliver)
	}
	thin := NewRect(0, 0, 1, 1e-6)
	if IsZero(thin.Area()) {
		t.Errorf("thin %v area should not be ~0", thin)
	}
}

// Touching edges: rectangles sharing only a boundary intersect (the
// paper's closed-region definition) with zero intersection area, and
// the shared coordinate compares equal under FloatEq even when it is
// reached by different arithmetic.
func TestTouchingEdges(t *testing.T) {
	left := NewRect(0, 0, 1, 1)
	right := NewRect(1, 0, 2, 1)
	if !left.Intersects(right) {
		t.Fatalf("%v and %v share an edge and must intersect", left, right)
	}
	if !IsZero(left.IntersectionArea(right)) {
		t.Errorf("edge-touching intersection area = %g, want ~0", left.IntersectionArea(right))
	}
	inter, ok := left.Intersection(right)
	if !ok {
		t.Fatalf("edge-touching Intersection reported empty")
	}
	if !IsZero(inter.Area()) || !FloatEq(inter.MinX, 1) || !FloatEq(inter.MaxX, 1) {
		t.Errorf("edge intersection = %v, want degenerate at x=1", inter)
	}

	// The same boundary computed two ways (0.1*10 vs 1.0) differs in
	// the last bits; FloatEq must still identify it.
	b := 0.0
	for i := 0; i < 10; i++ {
		b += 0.1
	}
	if b == 1.0 { //spatialvet:ignore floatcmp demonstrating the rounding this package guards against
		t.Logf("platform happened to round 10*0.1 to exactly 1")
	}
	if !FloatEq(b, 1.0) {
		t.Errorf("FloatEq(%.17g, 1) = false, want true", b)
	}
	shifted := NewRect(b, 0, 2, 1)
	if !left.Intersects(shifted) {
		t.Errorf("rectangle at accumulated boundary %v should touch %v", shifted, left)
	}

	// Corner touching: a single shared point still intersects.
	corner := NewRect(1, 1, 2, 2)
	if !left.Intersects(corner) {
		t.Errorf("%v and %v share a corner and must intersect", left, corner)
	}
}

func TestRectPointEq(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	s := NewRect(0, 0, 1, 1+5e-13)
	if !RectEq(r, s) {
		t.Errorf("RectEq(%v, %v) = false, want true", r, s)
	}
	if RectEq(r, NewRect(0, 0, 1, 1.1)) {
		t.Errorf("RectEq should reject a real difference")
	}
	if !PointEq(Point{1, 2}, Point{1 + 1e-13, 2}) {
		t.Errorf("PointEq should tolerate sub-epsilon drift")
	}
	if PointEq(Point{1, 2}, Point{1.01, 2}) {
		t.Errorf("PointEq should reject a real difference")
	}
}
