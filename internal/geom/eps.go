package geom

import "math"

// Tolerances for approximate floating-point comparison. The estimators
// never need exact float equality: query/bucket boundaries coincide
// only up to rounding in coordinate transforms, and densities are sums
// of many terms. EpsAbs decides closeness to zero (degenerate extents,
// zero areas); EpsRel scales with magnitude for large coordinates.
// Both are far below any meaningful geometric resolution, so switching
// a raw == to these helpers never changes a correct comparison — it
// only stops last-bit rounding from flipping a boundary decision.
const (
	EpsAbs = 1e-12
	EpsRel = 1e-12
)

// FloatEq reports whether a and b are equal within the combined
// absolute/relative tolerance. NaN equals nothing; infinities equal
// themselves.
func FloatEq(a, b float64) bool {
	if a == b { //spatialvet:ignore floatcmp exact fast path anchors the epsilon helpers
		return true
	}
	diff := math.Abs(a - b)
	if math.IsInf(diff, 0) || math.IsNaN(diff) {
		// Distinct infinities, or NaN operands: never equal (equal
		// infinities took the fast path above).
		return false
	}
	if diff <= EpsAbs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return diff <= m*EpsRel
}

// IsZero reports whether v is zero within the absolute tolerance.
func IsZero(v float64) bool {
	return math.Abs(v) <= EpsAbs
}

// PointEq reports whether p and q coincide within tolerance.
func PointEq(p, q Point) bool {
	return FloatEq(p.X, q.X) && FloatEq(p.Y, q.Y)
}

// RectEq reports whether r and s have the same corners within
// tolerance.
func RectEq(r, s Rect) bool {
	return FloatEq(r.MinX, s.MinX) && FloatEq(r.MinY, s.MinY) &&
		FloatEq(r.MaxX, s.MaxX) && FloatEq(r.MaxY, s.MaxY)
}
