package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// bruteKNN is the reference implementation.
func bruteKNN(rects []geom.Rect, p geom.Point, k int) []Neighbor {
	out := make([]Neighbor, len(rects))
	for i, r := range rects {
		out[i] = Neighbor{Rect: r, ID: i, Dist: math.Sqrt(minDistSq(p, r))}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestMinDistSq(t *testing.T) {
	r := geom.NewRect(2, 2, 4, 4)
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Point{X: 3, Y: 3}, 0}, // inside
		{geom.Point{X: 2, Y: 3}, 0}, // on boundary
		{geom.Point{X: 0, Y: 3}, 4}, // left
		{geom.Point{X: 3, Y: 7}, 9}, // above
		{geom.Point{X: 0, Y: 0}, 8}, // corner: 2^2 + 2^2
		{geom.Point{X: 6, Y: 6}, 8}, // opposite corner
	}
	for _, c := range cases {
		if got := minDistSq(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("minDistSq(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	rects := randRects(rng, 2000, 1000, 20)
	for _, build := range []struct {
		name string
		tree *Tree
	}{
		{"insert", func() *Tree {
			tr := New(16)
			for i, r := range rects {
				tr.Insert(r, i)
			}
			return tr
		}()},
		{"str", STRLoad(rects, 16)},
	} {
		for trial := 0; trial < 50; trial++ {
			p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
			k := 1 + rng.Intn(20)
			got := build.tree.NearestNeighbors(k, p)
			want := bruteKNN(rects, p, k)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d neighbors, want %d", build.name, len(got), len(want))
			}
			for i := range got {
				// Distances must match exactly in order (ties may swap
				// IDs, so compare distances).
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("%s: neighbor %d dist %g, want %g", build.name, i, got[i].Dist, want[i].Dist)
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist-1e-12 {
					t.Fatalf("%s: results not sorted", build.name)
				}
			}
		}
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr := New(8)
	if got := tr.NearestNeighbors(3, geom.Point{}); got != nil {
		t.Fatalf("empty tree kNN = %v", got)
	}
	tr.Insert(geom.NewRect(0, 0, 1, 1), 0)
	if got := tr.NearestNeighbors(0, geom.Point{}); got != nil {
		t.Fatalf("k=0 kNN = %v", got)
	}
	// k larger than the tree returns everything.
	got := tr.NearestNeighbors(10, geom.Point{X: 5, Y: 5})
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("kNN = %v", got)
	}
	// Query point inside a rectangle: distance 0.
	if got[0].Dist != math.Sqrt(minDistSq(geom.Point{X: 5, Y: 5}, geom.NewRect(0, 0, 1, 1))) {
		t.Fatalf("distance mismatch")
	}
	inside := tr.NearestNeighbors(1, geom.Point{X: 0.5, Y: 0.5})
	if inside[0].Dist != 0 {
		t.Fatalf("inside distance = %g", inside[0].Dist)
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := randRects(rng, 100000, 10000, 30)
	tr := STRLoad(rects, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: float64(i%10000) + 0.5, Y: float64((i*7)%10000) + 0.5}
		tr.NearestNeighbors(10, p)
	}
}
