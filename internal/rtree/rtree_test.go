package rtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randRects(rng *rand.Rand, n int, space, maxSide float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64()*space, rng.Float64()*space
		out[i] = geom.NewRect(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide)
	}
	return out
}

// bruteCount is the ground truth for Search/Count.
func bruteCount(rects []geom.Rect, q geom.Rect) int {
	c := 0
	for _, r := range rects {
		if r.Intersects(q) {
			c++
		}
	}
	return c
}

func TestEmptyTree(t *testing.T) {
	tr := New(16)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree should have no bounds")
	}
	if got := tr.Count(geom.NewRect(0, 0, 1, 1)); got != 0 {
		t.Fatalf("Count on empty = %d", got)
	}
	if tr.Delete(geom.NewRect(0, 0, 1, 1), 5) {
		t.Fatal("Delete on empty should report false")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewClampsCapacity(t *testing.T) {
	if got := New(0).MaxEntries(); got != DefaultMaxEntries {
		t.Errorf("New(0) capacity = %d", got)
	}
	if got := New(2).MaxEntries(); got != 4 {
		t.Errorf("New(2) capacity = %d, want 4", got)
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(4)
	rects := []geom.Rect{
		geom.NewRect(0, 0, 1, 1),
		geom.NewRect(2, 2, 3, 3),
		geom.NewRect(0.5, 0.5, 2.5, 2.5),
		geom.NewRect(10, 10, 11, 11),
	}
	for i, r := range rects {
		tr.Insert(r, i)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Note [(2,2),(3,3)] touches (0,0,2,2) at a corner and would count;
	// use 1.9 to isolate rects 0 and 2.
	q := geom.NewRect(0, 0, 1.9, 1.9)
	got := map[int]bool{}
	tr.Search(q, func(_ geom.Rect, id int) bool {
		got[id] = true
		return true
	})
	if len(got) != 2 || !got[0] || !got[2] {
		t.Fatalf("Search hits = %v, want {0,2}", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(geom.NewRect(0, 0, 1, 1), i)
	}
	calls := 0
	tr.Search(geom.NewRect(0, 0, 1, 1), func(_ geom.Rect, _ int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop made %d calls, want 5", calls)
	}
}

func TestInvariantsAcrossCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rects := randRects(rng, 3000, 1000, 20)
	for _, capn := range []int{4, 8, 16, 50, 200} {
		tr := New(capn)
		for i, r := range rects {
			tr.Insert(r, i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("capacity %d: %v", capn, err)
		}
		if tr.Len() != len(rects) {
			t.Fatalf("capacity %d: Len = %d", capn, tr.Len())
		}
		b, ok := tr.Bounds()
		want, _ := geom.MBR(rects)
		if !ok || b != want {
			t.Fatalf("capacity %d: Bounds = %v, want %v", capn, b, want)
		}
	}
}

func TestPropertySearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rects := randRects(rng, 2000, 1000, 30)
	tr := New(16)
	for i, r := range rects {
		tr.Insert(r, i)
	}
	for i := 0; i < 300; i++ {
		q := randRects(rng, 1, 1000, 200)[0]
		want := bruteCount(rects, q)
		if got := tr.Count(q); got != want {
			t.Fatalf("query %v: Count = %d, brute force = %d", q, got, want)
		}
	}
	// Point queries too.
	for i := 0; i < 100; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		q := geom.PointRect(p)
		want := bruteCount(rects, q)
		if got := tr.Count(q); got != want {
			t.Fatalf("point query %v: Count = %d, want %d", p, got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rects := randRects(rng, 1000, 500, 15)
	tr := New(8)
	for i, r := range rects {
		tr.Insert(r, i)
	}
	// Delete a random half.
	perm := rng.Perm(len(rects))
	deleted := map[int]bool{}
	for _, i := range perm[:500] {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%v, %d) failed", rects[i], i)
		}
		deleted[i] = true
	}
	if tr.Len() != 500 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted entries are gone, survivors still found.
	q, _ := geom.MBR(rects)
	found := map[int]bool{}
	tr.Search(q, func(_ geom.Rect, id int) bool {
		found[id] = true
		return true
	})
	for i := range rects {
		if deleted[i] && found[i] {
			t.Fatalf("deleted entry %d still found", i)
		}
		if !deleted[i] && !found[i] {
			t.Fatalf("surviving entry %d missing", i)
		}
	}
	// Deleting again reports false.
	for _, i := range perm[:10] {
		if tr.Delete(rects[i], i) {
			t.Fatalf("double delete of %d succeeded", i)
		}
	}
	// Delete everything: tree returns to empty state.
	for _, i := range perm[500:] {
		if !tr.Delete(rects[i], i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after deleting all: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := New(6)
	live := map[int]geom.Rect{}
	next := 0
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := randRects(rng, 1, 200, 10)[0]
			tr.Insert(r, next)
			live[next] = r
			next++
		} else {
			// Delete an arbitrary live entry.
			for id, r := range live {
				if !tr.Delete(r, id) {
					t.Fatalf("delete live %d failed", id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(0, 0, 200, 200)
	if got := tr.Count(q); got != len(live) {
		t.Fatalf("Count all = %d, want %d", got, len(live))
	}
}

func TestSTRLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rects := randRects(rng, 5000, 2000, 25)
	tr := STRLoad(rects, 32)
	if tr.Len() != len(rects) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := randRects(rng, 1, 2000, 300)[0]
		want := bruteCount(rects, q)
		if got := tr.Count(q); got != want {
			t.Fatalf("STR query: Count = %d, want %d", got, want)
		}
	}
}

func TestSTRLoadEmptyAndTiny(t *testing.T) {
	tr := STRLoad(nil, 16)
	if tr.Len() != 0 {
		t.Fatalf("STR empty Len = %d", tr.Len())
	}
	tr = STRLoad([]geom.Rect{geom.NewRect(0, 0, 1, 1)}, 16)
	if tr.Len() != 1 || tr.Count(geom.NewRect(0, 0, 2, 2)) != 1 {
		t.Fatal("STR single-rect tree broken")
	}
}

func TestLevelNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rects := randRects(rng, 2000, 1000, 10)
	tr := New(16)
	for i, r := range rects {
		tr.Insert(r, i)
	}
	if _, err := tr.LevelNodes(-1); err == nil {
		t.Fatal("negative level should error")
	}
	if _, err := tr.LevelNodes(tr.Height()); err == nil {
		t.Fatal("level == height should error")
	}
	for level := 0; level < tr.Height(); level++ {
		sums, err := tr.LevelNodes(level)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		var sumW float64
		for _, s := range sums {
			total += s.Count
			sumW += s.SumW
			if s.Count <= 0 {
				t.Fatalf("level %d summary with zero count", level)
			}
		}
		if total != len(rects) {
			t.Fatalf("level %d: total count %d != %d", level, total, len(rects))
		}
		var wantW float64
		for _, r := range rects {
			wantW += r.Width()
		}
		if diff := sumW - wantW; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("level %d: sumW %g != %g", level, sumW, wantW)
		}
	}
	// Root level has a single summary covering everything.
	top, err := tr.LevelNodes(tr.Height() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Count != len(rects) {
		t.Fatalf("root level summaries = %d nodes, count %d", len(top), top[0].Count)
	}
	if _, err := New(8).LevelNodes(0); err == nil {
		t.Fatal("LevelNodes on empty tree should error")
	}
}

func TestDegenerateInputs(t *testing.T) {
	tr := New(4)
	// Many identical zero-area rectangles.
	pt := geom.NewRect(5, 5, 5, 5)
	for i := 0; i < 200; i++ {
		tr.Insert(pt, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(geom.PointRect(geom.Point{X: 5, Y: 5})); got != 200 {
		t.Fatalf("Count identical = %d", got)
	}
	if got := tr.Count(geom.NewRect(6, 6, 7, 7)); got != 0 {
		t.Fatalf("miss query = %d", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := randRects(rng, b.N, 10000, 50)
	tr := New(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rects[i], i)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := randRects(rng, 100000, 10000, 50)
	tr := STRLoad(rects, 32)
	queries := randRects(rng, 1024, 10000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Count(queries[i%len(queries)])
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	tr := New(8)
	bad := []geom.Rect{
		{MinX: 5, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1},
	}
	for _, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Insert(%v) should panic", r)
				}
			}()
			tr.Insert(r, 0)
		}()
	}
	if tr.Len() != 0 {
		t.Fatal("failed inserts must not change the tree")
	}
}
