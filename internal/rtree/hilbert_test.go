package rtree

import (
	"math/rand"
	"testing"
)

func TestHilbertValueBijective(t *testing.T) {
	const order = 5
	n := uint32(1) << order
	seen := make(map[uint64]bool, n*n)
	for y := uint32(0); y < n; y++ {
		for x := uint32(0); x < n; x++ {
			d := hilbertValue(order, x, y)
			if d >= uint64(n)*uint64(n) {
				t.Fatalf("hilbert(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("hilbert(%d,%d) = %d collides", x, y, d)
			}
			seen[d] = true
		}
	}
}

func TestHilbertValueContinuity(t *testing.T) {
	// Successive curve positions must be 4-adjacent cells: that is the
	// defining property of the Hilbert curve.
	const order = 5
	n := uint32(1) << order
	pos := make(map[uint64][2]uint32, n*n)
	for y := uint32(0); y < n; y++ {
		for x := uint32(0); x < n; x++ {
			pos[hilbertValue(order, x, y)] = [2]uint32{x, y}
		}
	}
	for d := uint64(0); d+1 < uint64(n)*uint64(n); d++ {
		a, b := pos[d], pos[d+1]
		dx := int64(a[0]) - int64(b[0])
		dy := int64(a[1]) - int64(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump between d=%d (%v) and d=%d (%v)", d, a, d+1, b)
		}
	}
}

func TestHilbertLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rects := randRects(rng, 5000, 2000, 25)
	tr := HilbertLoad(rects, 32)
	if tr.Len() != len(rects) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		q := randRects(rng, 1, 2000, 300)[0]
		want := bruteCount(rects, q)
		if got := tr.Count(q); got != want {
			t.Fatalf("Hilbert query: Count = %d, want %d", got, want)
		}
	}
}

func TestHilbertLoadEmptyAndDegenerate(t *testing.T) {
	if got := HilbertLoad(nil, 16).Len(); got != 0 {
		t.Fatalf("empty Len = %d", got)
	}
	// All-identical rectangles: degenerate world, scale zero.
	pts := randRects(rand.New(rand.NewSource(1)), 1, 10, 1)
	for i := 0; i < 100; i++ {
		pts = append(pts, pts[0])
	}
	tr := HilbertLoad(pts, 8)
	if tr.Len() != len(pts) {
		t.Fatalf("degenerate Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(pts[0]); got != len(pts) {
		t.Fatalf("degenerate Count = %d", got)
	}
}
