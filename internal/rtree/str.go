package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// STRLoad builds an R-tree over the given rectangles using the
// Sort-Tile-Recursive bulk-loading algorithm of Leutenegger, Edgington
// and Lopez. Entry i receives data identifier i. The resulting tree is
// fully packed (every node except possibly the last per level is full),
// which is the O(N/B log_B N) construction the paper contrasts with
// repeated insertion in Section 3.5.
func STRLoad(rcts []geom.Rect, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(rcts) == 0 {
		return t
	}
	entries := make([]entry, len(rcts))
	for i, r := range rcts {
		entries[i] = entry{rect: r, id: i}
	}
	nodes := packLevel(entries, t.maxE, t.minE, true)
	height := 1
	for len(nodes) > 1 {
		parents := make([]entry, len(nodes))
		for i, n := range nodes {
			parents[i] = entry{rect: n.mbr(), child: n}
		}
		nodes = packLevel(parents, t.maxE, t.minE, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
	t.size = len(rcts)
	return t
}

// packLevel tiles the entries into nodes of up to maxE entries using
// the STR sweep: sort by center x, slice vertically, sort each slice by
// center y, and cut runs of maxE.
func packLevel(entries []entry, maxE, minE int, leaf bool) []*node {
	n := len(entries)
	nodeCount := (n + maxE - 1) / maxE
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	sliceSize := sliceCount * maxE

	sort.Slice(entries, func(a, b int) bool {
		return entries[a].rect.Center().X < entries[b].rect.Center().X
	})

	var nodes []*node
	for start := 0; start < n; start += sliceSize {
		end := start + sliceSize
		if end > n {
			end = n
		}
		sl := entries[start:end]
		sort.Slice(sl, func(a, b int) bool {
			return sl[a].rect.Center().Y < sl[b].rect.Center().Y
		})
		for s := 0; s < len(sl); s += maxE {
			e := s + maxE
			if e > len(sl) {
				e = len(sl)
			}
			nodes = append(nodes, &node{
				leaf:    leaf,
				entries: append([]entry(nil), sl[s:e]...),
			})
		}
	}
	// Tiling can leave the trailing node underfull; rebalance it from
	// its predecessor so the dynamic-operation minimum fill holds.
	if len(nodes) >= 2 {
		last, prev := nodes[len(nodes)-1], nodes[len(nodes)-2]
		if need := minE - len(last.entries); need > 0 && len(prev.entries)-need >= minE {
			cut := len(prev.entries) - need
			last.entries = append(last.entries, prev.entries[cut:]...)
			prev.entries = prev.entries[:cut]
		}
	}
	return nodes
}
