package rtree

import (
	"sort"

	"repro/internal/geom"
)

// Hilbert-packed bulk loading (Kamel and Faloutsos, VLDB 1994): sort
// the rectangles by the Hilbert value of their centers and pack them
// sequentially into leaves. Hilbert ordering preserves spatial
// locality better than a plain tile sweep for some distributions,
// giving tighter node MBRs — a useful ablation against STR both as an
// index and as a histogram source.

// hilbertOrder is the curve resolution: centers are quantized onto a
// 2^hilbertOrder square grid.
const hilbertOrder = 16

// hilbertValue returns the Hilbert curve index of cell (x, y) on the
// 2^order grid, using the classic iterative rotate-and-flip
// formulation.
func hilbertValue(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertLoad builds an R-tree by Hilbert-sorting the rectangle
// centers and packing nodes sequentially. Entry i receives data
// identifier i.
func HilbertLoad(rcts []geom.Rect, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(rcts) == 0 {
		return t
	}
	world, _ := geom.MBR(rcts)
	scaleX, scaleY := 0.0, 0.0
	grid := float64(uint32(1)<<hilbertOrder - 1)
	if w := world.Width(); w > 0 {
		scaleX = grid / w
	}
	if h := world.Height(); h > 0 {
		scaleY = grid / h
	}

	type keyed struct {
		key uint64
		e   entry
	}
	items := make([]keyed, len(rcts))
	for i, r := range rcts {
		c := r.Center()
		x := uint32((c.X - world.MinX) * scaleX)
		y := uint32((c.Y - world.MinY) * scaleY)
		items[i] = keyed{key: hilbertValue(hilbertOrder, x, y), e: entry{rect: r, id: i}}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].key < items[b].key })

	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = it.e
	}
	nodes := packSequential(entries, t.maxE, t.minE, true)
	height := 1
	for len(nodes) > 1 {
		parents := make([]entry, len(nodes))
		for i, n := range nodes {
			parents[i] = entry{rect: n.mbr(), child: n}
		}
		nodes = packSequential(parents, t.maxE, t.minE, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
	t.size = len(rcts)
	return t
}

// packSequential cuts the already-ordered entries into nodes of maxE,
// rebalancing the trailing node to honor the minimum fill.
func packSequential(entries []entry, maxE, minE int, leaf bool) []*node {
	var nodes []*node
	for s := 0; s < len(entries); s += maxE {
		e := s + maxE
		if e > len(entries) {
			e = len(entries)
		}
		nodes = append(nodes, &node{leaf: leaf, entries: append([]entry(nil), entries[s:e]...)})
	}
	if len(nodes) >= 2 {
		last, prev := nodes[len(nodes)-1], nodes[len(nodes)-2]
		if need := minE - len(last.entries); need > 0 && len(prev.entries)-need >= minE {
			cut := len(prev.entries) - need
			last.entries = append(last.entries, prev.entries[cut:]...)
			prev.entries = prev.entries[:cut]
		}
	}
	return nodes
}
