package rtree

import (
	"container/heap"
	"math"

	"repro/internal/geom"
)

// k-nearest-neighbor search by best-first branch-and-bound (Hjaltason
// and Samet): a priority queue ordered by minimum possible distance
// holds both nodes and data entries; popping a data entry yields the
// next nearest neighbor, so the traversal visits only the nodes it
// must.

// Neighbor is one kNN result.
type Neighbor struct {
	Rect geom.Rect
	ID   int
	// Dist is the Euclidean distance from the query point to the
	// rectangle (zero if the point lies inside it).
	Dist float64
}

// minDistSq returns the squared minimum distance from p to r.
func minDistSq(p geom.Point, r geom.Rect) float64 {
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

type knnItem struct {
	distSq float64
	node   *node // nil for data entries
	rect   geom.Rect
	id     int
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].distSq < q[j].distSq }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// NearestNeighbors returns the k indexed rectangles closest to p in
// ascending distance order (fewer if the tree holds fewer entries).
func (t *Tree) NearestNeighbors(k int, p geom.Point) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &knnQueue{{distSq: 0, node: t.root}}
	out := make([]Neighbor, 0, k)
	for q.Len() > 0 && len(out) < k {
		item := heap.Pop(q).(knnItem)
		if item.node == nil {
			out = append(out, Neighbor{Rect: item.rect, ID: item.id, Dist: math.Sqrt(item.distSq)})
			continue
		}
		t.tel.nodeAccesses.Inc()
		for _, e := range item.node.entries {
			child := knnItem{distSq: minDistSq(p, e.rect), rect: e.rect, id: e.id}
			if !item.node.leaf {
				child.node = e.child
			}
			heap.Push(q, child)
		}
	}
	return out
}
