// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider
// and Seeger (SIGMOD 1990), the spatial index the paper uses both as a
// query-processing substrate and as the source of its index-based
// histogram buckets (Section 3.4).
//
// The implementation is a complete dynamic index: insertion with the
// R* ChooseSubtree and forced-reinsertion heuristics, the topological
// margin/overlap split, deletion with tree condensation, rectangle
// range search, and Sort-Tile-Recursive (STR) bulk loading. The
// LevelNodes method exposes per-node aggregate statistics (MBR, entry
// count, summed widths and heights) so a histogram can be extracted
// from any level of the tree.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/telemetry"
)

const (
	// DefaultMaxEntries is the node capacity used by New when the
	// caller passes a non-positive capacity.
	DefaultMaxEntries = 32
	// minFillRatio is the R* minimum node fill (40% of capacity).
	minFillRatio = 0.4
	// reinsertRatio is the fraction of entries force-reinserted on the
	// first overflow of a level (30% in the R*-tree paper).
	reinsertRatio = 0.3
	// nearMinimumOverlapCandidates bounds the overlap-enlargement scan
	// in ChooseSubtree for large node capacities, as recommended by the
	// R*-tree paper (it uses 32).
	nearMinimumOverlapCandidates = 32
)

// entry is a slot in a node: a rectangle plus either a child pointer
// (internal nodes) or a data identifier (leaves).
type entry struct {
	rect  geom.Rect
	child *node
	id    int
}

type node struct {
	leaf    bool
	entries []entry
}

func (n *node) mbr() geom.Rect {
	out := n.entries[0].rect
	for _, e := range n.entries[1:] {
		out = out.Union(e.rect)
	}
	return out
}

// treeTelemetry holds the tree's counters; the zero value (all nil)
// is fully disabled and each increment then costs one nil check.
type treeTelemetry struct {
	nodeAccesses *telemetry.Counter
	inserts      *telemetry.Counter
	deletes      *telemetry.Counter
	splits       *telemetry.Counter
	reinserts    *telemetry.Counter
}

// Tree is an R*-tree over rectangles with integer data identifiers.
// The zero value is not usable; construct trees with New or STRLoad.
type Tree struct {
	root   *node
	size   int
	height int // number of levels; 1 when the root is a leaf
	maxE   int
	minE   int
	tel    treeTelemetry
}

// EnableTelemetry registers the tree's counters in reg under the given
// labels: node accesses during searches and nearest-neighbor scans,
// inserts, deletes, node splits, and entries force-reinserted by the
// R* overflow treatment. A nil reg leaves the counters disabled.
// Telemetry does not make the tree safe for concurrent mutation; it
// follows the tree's existing synchronization contract.
func (t *Tree) EnableTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	t.tel = treeTelemetry{
		nodeAccesses: reg.Counter("rtree_node_accesses_total",
			"R*-tree nodes visited by searches and nearest-neighbor scans.", labels...),
		inserts: reg.Counter("rtree_inserts_total",
			"Rectangles inserted.", labels...),
		deletes: reg.Counter("rtree_deletes_total",
			"Rectangles deleted.", labels...),
		splits: reg.Counter("rtree_splits_total",
			"Node splits performed.", labels...),
		reinserts: reg.Counter("rtree_reinserts_total",
			"Entries force-reinserted by the R* overflow treatment.", labels...),
	}
}

// New returns an empty R*-tree with the given node capacity. A
// capacity below 4 (or non-positive) is raised to DefaultMaxEntries
// or 4 respectively so the R* split always has room to work.
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	minEntries := int(math.Floor(float64(maxEntries) * minFillRatio))
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:   &node{leaf: true},
		height: 1,
		maxE:   maxEntries,
		minE:   minEntries,
	}
}

// Len returns the number of data entries in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels in the tree (1 for a leaf root).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity the tree was built with.
func (t *Tree) MaxEntries() int { return t.maxE }

// Bounds returns the MBR of all indexed rectangles and whether the tree
// is non-empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// Insert adds a rectangle with its data identifier to the tree. It
// panics on invalid rectangles (NaN/Inf coordinates or inverted
// corners): silently indexing them would corrupt every ancestor MBR
// comparison, so this is treated as programmer error, matching the
// package's no-error-return API.
func (t *Tree) Insert(r geom.Rect, id int) {
	if !r.Valid() {
		panic(fmt.Sprintf("rtree: Insert of invalid rectangle %v", r))
	}
	// reinserted tracks which levels have already performed a forced
	// reinsert during this insertion (OverflowTreatment is applied only
	// once per level per data insertion).
	reinserted := make([]bool, t.height+1)
	t.insertAtLevel(entry{rect: r, id: id}, 0, reinserted)
	t.size++
	t.tel.inserts.Inc()
}

// insertAtLevel places e at the given level (0 = leaf). It handles
// overflow by forced reinsertion or splitting, propagating splits to
// the root.
func (t *Tree) insertAtLevel(e entry, level int, reinserted []bool) {
	path := t.choosePath(e.rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	t.adjustPath(path, e.rect)

	// Walk back up handling overflows.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxE {
			continue
		}
		// Level of node n (0 = leaf): the path ends at the insertion
		// level, so path[i] sits level+(len(path)-1-i) above the leaves.
		lvl := level + (len(path) - 1 - i)
		// The tree can gain levels while this insertion is in flight
		// (root splits during forced reinsertion); levels beyond the
		// tracking slice simply split.
		if i > 0 && lvl < len(reinserted) && !reinserted[lvl] {
			reinserted[lvl] = true
			t.forcedReinsert(path, i, lvl, reinserted)
			return
		}
		t.splitNode(path, i)
	}
}

// choosePath descends from the root to the node at the target level
// using the R* ChooseSubtree criteria, returning the root-to-node path.
// Level 0 is the leaf level.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := make([]*node, 0, t.height)
	n := t.root
	path = append(path, n)
	depth := t.height - 1 // level of the current node
	for depth > level {
		var idx int
		if n.entries[0].child.leaf {
			// Children are leaves: use the R* least-overlap-enlargement
			// criterion.
			idx = chooseLeafSubtree(n, r)
		} else {
			idx = chooseMinEnlargement(n, r)
		}
		n = n.entries[idx].child
		path = append(path, n)
		depth--
	}
	return path
}

// chooseLeafSubtree picks the child whose MBR needs the least overlap
// enlargement to include r, resolving ties by least area enlargement,
// then least area. For large fanouts only the
// nearMinimumOverlapCandidates entries with the smallest area
// enlargement are considered, per the R*-tree paper.
func chooseLeafSubtree(n *node, r geom.Rect) int {
	// Overlap enlargement costs O(len(entries)) per candidate. For the
	// enormous fanouts used when extracting coarse histograms the full
	// criterion is quadratic per insert; fall back to the area
	// criterion there.
	if len(n.entries) > 256 {
		return chooseMinEnlargement(n, r)
	}
	cand := make([]int, len(n.entries))
	for i := range cand {
		cand[i] = i
	}
	if len(cand) > nearMinimumOverlapCandidates {
		sort.Slice(cand, func(a, b int) bool {
			return n.entries[cand[a]].rect.Enlargement(r) < n.entries[cand[b]].rect.Enlargement(r)
		})
		cand = cand[:nearMinimumOverlapCandidates]
	}
	best := cand[0]
	bestOverlap := overlapEnlargement(n, best, r)
	bestEnl := n.entries[best].rect.Enlargement(r)
	bestArea := n.entries[best].rect.Area()
	for _, i := range cand[1:] {
		ov := overlapEnlargement(n, i, r)
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Area()
		if ov < bestOverlap ||
			(ov == bestOverlap && enl < bestEnl) ||
			(ov == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

// overlapEnlargement returns the increase in the total overlap between
// entry i and its siblings if entry i's rectangle grew to include r.
func overlapEnlargement(n *node, i int, r geom.Rect) float64 {
	cur := n.entries[i].rect
	grown := cur.Union(r)
	var delta float64
	for j, e := range n.entries {
		if j == i {
			continue
		}
		delta += grown.IntersectionArea(e.rect) - cur.IntersectionArea(e.rect)
	}
	return delta
}

// chooseMinEnlargement picks the child whose MBR needs the least area
// enlargement to include r, resolving ties by smallest area.
func chooseMinEnlargement(n *node, r geom.Rect) int {
	best := 0
	bestEnl := n.entries[0].rect.Enlargement(r)
	bestArea := n.entries[0].rect.Area()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// adjustPath grows the parent entry MBRs along the path to include r.
func (t *Tree) adjustPath(path []*node, r geom.Rect) {
	for i := 0; i < len(path)-1; i++ {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = parent.entries[j].rect.Union(r)
				break
			}
		}
	}
}

// forcedReinsert removes the reinsertRatio fraction of entries of
// path[i] whose centers are farthest from the node MBR's center and
// reinserts them (closest first), per the R* OverflowTreatment.
func (t *Tree) forcedReinsert(path []*node, i, level int, reinserted []bool) {
	n := path[i]
	center := n.mbr().Center()
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for j, e := range n.entries {
		c := e.rect.Center()
		dx, dy := c.X-center.X, c.Y-center.Y
		des[j] = distEntry{e: e, d: dx*dx + dy*dy}
	}
	sort.Slice(des, func(a, b int) bool { return des[a].d < des[b].d })

	p := int(float64(t.maxE+1) * reinsertRatio)
	if p < 1 {
		p = 1
	}
	t.tel.reinserts.Add(uint64(p))
	keep := len(des) - p
	n.entries = n.entries[:0]
	for _, de := range des[:keep] {
		n.entries = append(n.entries, de.e)
	}
	// Tighten ancestors' MBRs after removal.
	t.recomputePathMBRs(path, i)

	// Close reinsert: nearest of the removed entries first.
	for _, de := range des[keep:] {
		t.insertAtLevel(de.e, level, reinserted)
	}
}

// recomputePathMBRs recomputes the parent-entry MBRs from path[i] up to
// the root after entries were removed.
func (t *Tree) recomputePathMBRs(path []*node, i int) {
	for k := i; k > 0; k-- {
		parent, child := path[k-1], path[k]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect = child.mbr()
				break
			}
		}
	}
}

// splitNode splits the overflowing node path[i] using the R* split and
// installs the new sibling in the parent (creating a new root when the
// root itself splits).
func (t *Tree) splitNode(path []*node, i int) {
	t.tel.splits.Inc()
	n := path[i]
	left, right := rstarSplit(n.entries, t.minE, n.leaf)
	n.entries = left.entries

	if i == 0 {
		// Root split: grow the tree.
		newRoot := &node{leaf: false, entries: []entry{
			{rect: n.mbr(), child: n},
			{rect: right.mbr(), child: right},
		}}
		t.root = newRoot
		t.height++
		return
	}
	parent := path[i-1]
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j].rect = n.mbr()
			break
		}
	}
	parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right})
	t.recomputePathMBRs(path, i-1)
}

// rstarSplit partitions the entries of an overflowing node into two
// nodes using the R* topological split: the split axis minimizes the
// total margin over all candidate distributions, and the distribution
// on that axis minimizes overlap area (ties: total area).
func rstarSplit(entries []entry, minE int, leaf bool) (*node, *node) {
	axisX := append([]entry(nil), entries...)
	axisY := append([]entry(nil), entries...)
	sort.Slice(axisX, func(a, b int) bool {
		if axisX[a].rect.MinX != axisX[b].rect.MinX {
			return axisX[a].rect.MinX < axisX[b].rect.MinX
		}
		return axisX[a].rect.MaxX < axisX[b].rect.MaxX
	})
	sort.Slice(axisY, func(a, b int) bool {
		if axisY[a].rect.MinY != axisY[b].rect.MinY {
			return axisY[a].rect.MinY < axisY[b].rect.MinY
		}
		return axisY[a].rect.MaxY < axisY[b].rect.MaxY
	})

	mx := marginSum(axisX, minE)
	my := marginSum(axisY, minE)
	chosen := axisX
	if my < mx {
		chosen = axisY
	}

	// Choose the distribution on the chosen axis minimizing overlap.
	total := len(chosen)
	bestK := minE
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minE; k <= total-minE; k++ {
		l, _ := geom.MBR(rects(chosen[:k]))
		r, _ := geom.MBR(rects(chosen[k:]))
		ov := l.IntersectionArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	left := &node{leaf: leaf, entries: append([]entry(nil), chosen[:bestK]...)}
	right := &node{leaf: leaf, entries: append([]entry(nil), chosen[bestK:]...)}
	return left, right
}

// marginSum returns the R* goodness value for an axis: the sum of the
// margins of both groups over every legal distribution of the sorted
// entries.
func marginSum(sorted []entry, minE int) float64 {
	total := len(sorted)
	// Prefix and suffix MBRs allow O(1) group MBRs per distribution.
	prefix := make([]geom.Rect, total+1)
	suffix := make([]geom.Rect, total+1)
	for i, e := range sorted {
		if i == 0 {
			prefix[1] = e.rect
		} else {
			prefix[i+1] = prefix[i].Union(e.rect)
		}
	}
	for i := total - 1; i >= 0; i-- {
		if i == total-1 {
			suffix[i] = sorted[i].rect
		} else {
			suffix[i] = suffix[i+1].Union(sorted[i].rect)
		}
	}
	var sum float64
	for k := minE; k <= total-minE; k++ {
		sum += prefix[k].Margin() + suffix[k].Margin()
	}
	return sum
}

func rects(es []entry) []geom.Rect {
	out := make([]geom.Rect, len(es))
	for i, e := range es {
		out[i] = e.rect
	}
	return out
}

// Search invokes fn for every indexed rectangle intersecting q. fn
// returning false stops the search early.
func (t *Tree) Search(q geom.Rect, fn func(r geom.Rect, id int) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *node, q geom.Rect, fn func(geom.Rect, int) bool) bool {
	t.tel.nodeAccesses.Inc()
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.id) {
				return false
			}
		} else if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// Count returns the number of indexed rectangles intersecting q.
func (t *Tree) Count(q geom.Rect) int {
	count := 0
	t.Search(q, func(geom.Rect, int) bool {
		count++
		return true
	})
	return count
}

// Delete removes one entry matching (r, id) exactly and reports whether
// an entry was removed. Underflowing nodes are dissolved and their
// entries reinserted (tree condensation).
func (t *Tree) Delete(r geom.Rect, id int) bool {
	path, idx := t.findLeaf(t.root, r, id, nil)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.tel.deletes.Inc()
	t.condense(path)
	// Shrink the root if it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.size == 0 {
		t.root = &node{leaf: true}
		t.height = 1
	}
	return true
}

func (t *Tree) findLeaf(n *node, r geom.Rect, id int, path []*node) ([]*node, int) {
	path = append(path, n)
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect == r {
				return path, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) {
			if p, i := t.findLeaf(e.child, r, id, path); p != nil {
				return p, i
			}
		}
	}
	return nil, 0
}

// condense removes underflowing nodes along the path and reinserts
// their surviving entries, tightening MBRs on the way up.
func (t *Tree) condense(path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		parent := path[i-1]
		level := len(path) - 1 - i
		if len(n.entries) < t.minE {
			// Remove n from its parent and queue its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					if len(n.entries) > 0 {
						parent.entries[j].rect = n.mbr()
					}
					break
				}
			}
		}
	}
	for _, o := range orphans {
		if o.level == 0 && o.e.child == nil {
			reinserted := make([]bool, t.height+1)
			t.insertAtLevel(o.e, 0, reinserted)
		} else {
			// Internal orphan: reinsert the whole subtree at its level.
			reinserted := make([]bool, t.height+1)
			t.insertAtLevel(o.e, o.level, reinserted)
		}
	}
}

// NodeSummary aggregates one tree node for histogram construction: its
// MBR and the count and summed dimensions of the data rectangles in its
// subtree.
type NodeSummary struct {
	MBR   geom.Rect
	Count int
	SumW  float64
	SumH  float64
}

// LevelNodes returns one NodeSummary per node at the given level, where
// level 0 is the leaves and Height()-1 is the root. It returns an error
// for an out-of-range level or an empty tree.
func (t *Tree) LevelNodes(level int) ([]NodeSummary, error) {
	if t.size == 0 {
		return nil, fmt.Errorf("rtree: empty tree")
	}
	if level < 0 || level >= t.height {
		return nil, fmt.Errorf("rtree: level %d out of range [0,%d)", level, t.height)
	}
	var out []NodeSummary
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if depth == level {
			s := NodeSummary{MBR: n.mbr()}
			aggregate(n, &s)
			out = append(out, s)
			return
		}
		for _, e := range n.entries {
			walk(e.child, depth-1)
		}
	}
	walk(t.root, t.height-1)
	return out, nil
}

func aggregate(n *node, s *NodeSummary) {
	if n.leaf {
		for _, e := range n.entries {
			s.Count++
			s.SumW += e.rect.Width()
			s.SumH += e.rect.Height()
		}
		return
	}
	for _, e := range n.entries {
		aggregate(e.child, s)
	}
}

// CheckInvariants verifies structural invariants of the tree: every
// child MBR is contained in its parent entry rectangle and equals the
// child's recomputed MBR, node occupancy is within [minE, maxE] (except
// the root), all leaves are at the same depth, and the entry count
// matches Len. It is intended for tests.
func (t *Tree) CheckInvariants() error {
	if t.size == 0 {
		return nil
	}
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root {
			if len(n.entries) < t.minE || len(n.entries) > t.maxE {
				return fmt.Errorf("node occupancy %d outside [%d,%d]", len(n.entries), t.minE, t.maxE)
			}
		} else if len(n.entries) > t.maxE {
			return fmt.Errorf("root occupancy %d above max %d", len(n.entries), t.maxE)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at different depths: %d and %d", leafDepth, depth)
			}
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			got := e.child.mbr()
			if got != e.rect {
				return fmt.Errorf("stale parent MBR: have %v, child is %v", e.rect, got)
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("entry count %d != size %d", count, t.size)
	}
	if leafDepth != t.height-1 {
		return fmt.Errorf("leaf depth %d != height-1 %d", leafDepth, t.height-1)
	}
	return nil
}
