// Package metrics implements the evaluation metrics of Section 5 of
// the paper, principally the average relative error of a set of
// selectivity estimates: sum over the query set of |actual - estimate|
// divided by the sum of the actual result sizes.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AvgRelativeError returns the paper's error metric
// (Σ|rᵢ−eᵢ|)/(Σrᵢ) for actual result sizes r and estimates e. It
// returns an error when the slices differ in length or every query has
// an empty result (the metric is undefined then, per the paper's
// footnote).
func AvgRelativeError(actual []int, estimates []float64) (float64, error) {
	if len(actual) != len(estimates) {
		return 0, fmt.Errorf("metrics: %d actuals vs %d estimates", len(actual), len(estimates))
	}
	var sumErr, sumActual float64
	for i, r := range actual {
		sumErr += math.Abs(float64(r) - estimates[i])
		sumActual += float64(r)
	}
	if sumActual == 0 {
		return 0, fmt.Errorf("metrics: average relative error undefined: all queries empty")
	}
	return sumErr / sumActual, nil
}

// Summary holds descriptive statistics of per-query absolute errors,
// useful for deeper analysis than the single paper metric.
type Summary struct {
	Queries     int
	AvgRelError float64 // the paper's metric
	MeanAbs     float64 // mean |r - e|
	RMS         float64 // root mean squared error
	MaxAbs      float64 // worst absolute error
	P50Abs      float64 // median absolute error
	P95Abs      float64 // 95th percentile absolute error
}

// Summarize computes a Summary for the given actual result sizes and
// estimates.
func Summarize(actual []int, estimates []float64) (Summary, error) {
	are, err := AvgRelativeError(actual, estimates)
	if err != nil {
		return Summary{}, err
	}
	n := len(actual)
	abs := make([]float64, n)
	var sumAbs, sumSq float64
	for i, r := range actual {
		a := math.Abs(float64(r) - estimates[i])
		abs[i] = a
		sumAbs += a
		sumSq += a * a
	}
	sort.Float64s(abs)
	return Summary{
		Queries:     n,
		AvgRelError: are,
		MeanAbs:     sumAbs / float64(n),
		RMS:         math.Sqrt(sumSq / float64(n)),
		MaxAbs:      abs[n-1],
		P50Abs:      percentile(abs, 0.50),
		P95Abs:      percentile(abs, 0.95),
	}, nil
}

// percentile returns the p-quantile (0 <= p <= 1) of sorted values by
// nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("relerr=%.3f meanabs=%.2f rms=%.2f p50=%.2f p95=%.2f max=%.2f (n=%d)",
		s.AvgRelError, s.MeanAbs, s.RMS, s.P50Abs, s.P95Abs, s.MaxAbs, s.Queries)
}
