package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAvgRelativeError(t *testing.T) {
	// Paper formula: (sum |r-e|) / (sum r).
	actual := []int{10, 0, 5}
	est := []float64{8, 1, 5}
	got, err := AvgRelativeError(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 + 1.0 + 0.0) / 15.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgRelativeError = %g, want %g", got, want)
	}
}

func TestAvgRelativeErrorPerfect(t *testing.T) {
	got, err := AvgRelativeError([]int{3, 7}, []float64{3, 7})
	if err != nil || got != 0 {
		t.Fatalf("perfect estimates: %g, %v", got, err)
	}
}

func TestAvgRelativeErrorErrors(t *testing.T) {
	if _, err := AvgRelativeError([]int{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := AvgRelativeError([]int{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("all-empty actuals should fail (metric undefined)")
	}
}

func TestSummarize(t *testing.T) {
	actual := []int{10, 20, 30, 40}
	est := []float64{12, 20, 25, 50}
	s, err := Summarize(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 4 {
		t.Errorf("Queries = %d", s.Queries)
	}
	// abs errors: 2, 0, 5, 10
	if s.MaxAbs != 10 {
		t.Errorf("MaxAbs = %g", s.MaxAbs)
	}
	if s.MeanAbs != 17.0/4 {
		t.Errorf("MeanAbs = %g", s.MeanAbs)
	}
	wantRMS := math.Sqrt((4 + 0 + 25 + 100) / 4.0)
	if math.Abs(s.RMS-wantRMS) > 1e-12 {
		t.Errorf("RMS = %g, want %g", s.RMS, wantRMS)
	}
	if s.P50Abs != 2 { // sorted: 0,2,5,10; ceil(0.5*4)-1 = 1
		t.Errorf("P50Abs = %g", s.P50Abs)
	}
	if s.P95Abs != 10 {
		t.Errorf("P95Abs = %g", s.P95Abs)
	}
	if !strings.Contains(s.String(), "relerr=") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeError(t *testing.T) {
	if _, err := Summarize([]int{0}, []float64{5}); err == nil {
		t.Fatal("undefined metric should propagate")
	}
}

func TestPercentileEdges(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %g", got)
	}
	vals := []float64{1, 2, 3}
	if got := percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := percentile(vals, 1); got != 3 {
		t.Errorf("p100 = %g", got)
	}
}

func TestQuickErrorNonNegativeAndZeroIffExact(t *testing.T) {
	f := func(vals []uint8, noise []int8) bool {
		if len(vals) == 0 {
			return true
		}
		actual := make([]int, len(vals))
		est := make([]float64, len(vals))
		anyPositive := false
		exact := true
		for i, v := range vals {
			actual[i] = int(v)
			if v > 0 {
				anyPositive = true
			}
			var nz float64
			if i < len(noise) {
				nz = float64(noise[i])
			}
			if nz != 0 {
				exact = false
			}
			est[i] = float64(v) + nz
		}
		if !anyPositive {
			_, err := AvgRelativeError(actual, est)
			return err != nil
		}
		got, err := AvgRelativeError(actual, est)
		if err != nil {
			return false
		}
		if got < 0 {
			return false
		}
		if exact && got != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
