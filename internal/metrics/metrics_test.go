package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAvgRelativeError(t *testing.T) {
	// Paper formula: (sum |r-e|) / (sum r).
	actual := []int{10, 0, 5}
	est := []float64{8, 1, 5}
	got, err := AvgRelativeError(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	want := (2.0 + 1.0 + 0.0) / 15.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgRelativeError = %g, want %g", got, want)
	}
}

func TestAvgRelativeErrorPerfect(t *testing.T) {
	got, err := AvgRelativeError([]int{3, 7}, []float64{3, 7})
	if err != nil || got != 0 {
		t.Fatalf("perfect estimates: %g, %v", got, err)
	}
}

func TestAvgRelativeErrorErrors(t *testing.T) {
	if _, err := AvgRelativeError([]int{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := AvgRelativeError([]int{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("all-empty actuals should fail (metric undefined)")
	}
}

func TestSummarize(t *testing.T) {
	actual := []int{10, 20, 30, 40}
	est := []float64{12, 20, 25, 50}
	s, err := Summarize(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 4 {
		t.Errorf("Queries = %d", s.Queries)
	}
	// abs errors: 2, 0, 5, 10
	if s.MaxAbs != 10 {
		t.Errorf("MaxAbs = %g", s.MaxAbs)
	}
	if s.MeanAbs != 17.0/4 {
		t.Errorf("MeanAbs = %g", s.MeanAbs)
	}
	wantRMS := math.Sqrt((4 + 0 + 25 + 100) / 4.0)
	if math.Abs(s.RMS-wantRMS) > 1e-12 {
		t.Errorf("RMS = %g, want %g", s.RMS, wantRMS)
	}
	if s.P50Abs != 2 { // sorted: 0,2,5,10; ceil(0.5*4)-1 = 1
		t.Errorf("P50Abs = %g", s.P50Abs)
	}
	if s.P95Abs != 10 {
		t.Errorf("P95Abs = %g", s.P95Abs)
	}
	if !strings.Contains(s.String(), "relerr=") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeError(t *testing.T) {
	if _, err := Summarize([]int{0}, []float64{5}); err == nil {
		t.Fatal("undefined metric should propagate")
	}
}

func TestPercentileEdges(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %g", got)
	}
	vals := []float64{1, 2, 3}
	if got := percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := percentile(vals, 1); got != 3 {
		t.Errorf("p100 = %g", got)
	}
}

// TestSummarizeSingleQuery pins down the degenerate n=1 case: every
// statistic collapses to the one absolute error.
func TestSummarizeSingleQuery(t *testing.T) {
	s, err := Summarize([]int{10}, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Queries != 1 {
		t.Errorf("Queries = %d", s.Queries)
	}
	for label, got := range map[string]float64{
		"MeanAbs": s.MeanAbs, "RMS": s.RMS, "MaxAbs": s.MaxAbs,
		"P50Abs": s.P50Abs, "P95Abs": s.P95Abs,
	} {
		if got != 3 {
			t.Errorf("%s = %g, want 3", label, got)
		}
	}
	if want := 3.0 / 10.0; math.Abs(s.AvgRelError-want) > 1e-12 {
		t.Errorf("AvgRelError = %g, want %g", s.AvgRelError, want)
	}
}

// TestSummarizeAllEqualErrors checks that identical per-query errors
// make every percentile and moment agree.
func TestSummarizeAllEqualErrors(t *testing.T) {
	actual := []int{10, 10, 10, 10, 10}
	est := []float64{14, 6, 14, 6, 14} // |err| = 4 everywhere
	s, err := Summarize(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	for label, got := range map[string]float64{
		"MeanAbs": s.MeanAbs, "RMS": s.RMS, "MaxAbs": s.MaxAbs,
		"P50Abs": s.P50Abs, "P95Abs": s.P95Abs,
	} {
		if got != 4 {
			t.Errorf("%s = %g, want 4", label, got)
		}
	}
}

// TestPercentileTinyN exercises nearest-rank p95 at small n, where
// ceil(p*n) rounds hard: any n <= 20 makes p95 the maximum.
func TestPercentileTinyN(t *testing.T) {
	cases := []struct {
		sorted []float64
		p      float64
		want   float64
	}{
		{[]float64{7}, 0.95, 7},             // n=1: the only value
		{[]float64{1, 9}, 0.95, 9},          // n=2: ceil(1.9)-1 = 1
		{[]float64{1, 5, 9}, 0.95, 9},       // n=3: ceil(2.85)-1 = 2
		{[]float64{1, 5, 9}, 0.5, 5},        // n=3 median is exact middle
		{[]float64{1, 2, 3, 4}, 0.95, 4},    // n=4
		{[]float64{1, 9}, 0.0, 1},           // p=0 clamps to the minimum
		{[]float64{1, 9}, 0.5, 1},           // n=2 median = lower of the two
		{[]float64{2, 4, 6, 8, 10}, 0.2, 2}, // ceil(1)-1 = 0
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("percentile(%v, %g) = %g, want %g", c.sorted, c.p, got, c.want)
		}
	}
	// 20 equal-spaced values: p95 is the 19th order statistic
	// (nearest-rank), not an interpolation.
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if got := percentile(vals, 0.95); got != 19 {
		t.Errorf("p95 of 1..20 = %g, want 19", got)
	}
}

func TestQuickErrorNonNegativeAndZeroIffExact(t *testing.T) {
	f := func(vals []uint8, noise []int8) bool {
		if len(vals) == 0 {
			return true
		}
		actual := make([]int, len(vals))
		est := make([]float64, len(vals))
		anyPositive := false
		exact := true
		for i, v := range vals {
			actual[i] = int(v)
			if v > 0 {
				anyPositive = true
			}
			var nz float64
			if i < len(noise) {
				nz = float64(noise[i])
			}
			if nz != 0 {
				exact = false
			}
			est[i] = float64(v) + nz
		}
		if !anyPositive {
			_, err := AvgRelativeError(actual, est)
			return err != nil
		}
		got, err := AvgRelativeError(actual, est)
		if err != nil {
			return false
		}
		if got < 0 {
			return false
		}
		if exact && got != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
