// Package fractal implements the box-counting machinery behind the
// parametric selectivity technique of Belussi and Faloutsos (VLDB
// 1995), which the paper evaluates as a baseline (Section 5.3). Real
// point sets frequently behave like fractals; their correlation
// fractal dimension D2 governs the average number of points inside a
// query region through a power law, so a single exponent summarizes
// the whole distribution.
//
// D2 is measured by imposing grids of side r = L/2^k over the data,
// summing the squared cell occupancies S2(r) = sum n_i^2, and fitting
// the slope of log S2 against log r. The box-counting dimension D0
// (slope of the log count of occupied cells) is computed alongside for
// diagnostics.
package fractal

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Dimension holds the fitted fractal dimensions of a point set.
type Dimension struct {
	// D0 is the box-counting (Hausdorff) dimension.
	D0 float64
	// D2 is the correlation dimension used for selectivity estimation
	// over biased query workloads (query centers drawn from the data).
	D2 float64
	// Scales is the number of grid scales used in the fit.
	Scales int
}

// BoxCounting measures the fractal dimensions of the points over the
// given bounding rectangle using grid exponents minExp..maxExp (grid
// side 2^k cells). The paper's datasets are well served by exponents
// 2..8. It returns an error when fewer than two usable scales remain
// or the input is degenerate.
func BoxCounting(points []geom.Point, bounds geom.Rect, minExp, maxExp int) (Dimension, error) {
	if len(points) == 0 {
		return Dimension{}, fmt.Errorf("fractal: no points")
	}
	if minExp < 0 || maxExp < minExp {
		return Dimension{}, fmt.Errorf("fractal: bad exponent range [%d,%d]", minExp, maxExp)
	}
	if maxExp > 12 {
		return Dimension{}, fmt.Errorf("fractal: maxExp %d too large (grid would need 4^%d cells)", maxExp, maxExp)
	}
	side := math.Max(bounds.Width(), bounds.Height())
	if side <= 0 {
		return Dimension{}, fmt.Errorf("fractal: degenerate bounds %v", bounds)
	}

	var logR, logS2, logN0 []float64
	for k := minExp; k <= maxExp; k++ {
		n := 1 << k
		counts := make(map[uint64]int, len(points))
		cell := side / float64(n)
		for _, p := range points {
			cx := int((p.X - bounds.MinX) / cell)
			cy := int((p.Y - bounds.MinY) / cell)
			if cx >= n {
				cx = n - 1
			}
			if cy >= n {
				cy = n - 1
			}
			if cx < 0 {
				cx = 0
			}
			if cy < 0 {
				cy = 0
			}
			counts[uint64(cy)<<32|uint64(uint32(cx))]++
		}
		var s2 float64
		for _, c := range counts {
			s2 += float64(c) * float64(c)
		}
		// Normalize to occupancy probabilities so the slope is D2.
		total := float64(len(points))
		s2 /= total * total
		logR = append(logR, math.Log(cell))
		logS2 = append(logS2, math.Log(s2))
		logN0 = append(logN0, math.Log(float64(len(counts))))
	}
	if len(logR) < 2 {
		return Dimension{}, fmt.Errorf("fractal: need at least two scales")
	}
	d2 := slope(logR, logS2)
	d0 := -slope(logR, logN0)
	return Dimension{D0: d0, D2: d2, Scales: len(logR)}, nil
}

// slope returns the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Model is the fitted power-law selectivity model: for a biased square
// query of side eps over a dataset of N points in a space of side L,
// the expected result size is N * (eps/L)^D2.
type Model struct {
	Dim    Dimension
	N      int
	Bounds geom.Rect
	side   float64
}

// Fit measures the fractal dimension of the points and returns the
// selectivity model.
func Fit(points []geom.Point, bounds geom.Rect, minExp, maxExp int) (*Model, error) {
	dim, err := BoxCounting(points, bounds, minExp, maxExp)
	if err != nil {
		return nil, err
	}
	return &Model{
		Dim:    dim,
		N:      len(points),
		Bounds: bounds,
		side:   math.Max(bounds.Width(), bounds.Height()),
	}, nil
}

// EstimateRange returns the expected number of points in a w x h query
// region whose center follows the data distribution. Non-square
// queries use the side of the equal-area square, eps = sqrt(w*h).
func (m *Model) EstimateRange(w, h float64) float64 {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	eps := math.Sqrt(w * h)
	if eps <= 0 {
		return 0
	}
	if m.side <= 0 {
		return float64(m.N)
	}
	frac := eps / m.side
	if frac > 1 {
		frac = 1
	}
	return float64(m.N) * math.Pow(frac, m.Dim.D2)
}
