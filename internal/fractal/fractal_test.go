package fractal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBoxCountingErrors(t *testing.T) {
	b := geom.NewRect(0, 0, 1, 1)
	if _, err := BoxCounting(nil, b, 2, 8); err == nil {
		t.Fatal("no points should fail")
	}
	pts := []geom.Point{{X: 0.5, Y: 0.5}}
	if _, err := BoxCounting(pts, b, -1, 8); err == nil {
		t.Fatal("negative exponent should fail")
	}
	if _, err := BoxCounting(pts, b, 5, 4); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := BoxCounting(pts, b, 2, 20); err == nil {
		t.Fatal("huge exponent should fail")
	}
	if _, err := BoxCounting(pts, geom.NewRect(1, 1, 1, 1), 2, 8); err == nil {
		t.Fatal("degenerate bounds should fail")
	}
}

func TestUniformPointsDimensionNearTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := make([]geom.Point, 50000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	dim, err := BoxCounting(pts, geom.NewRect(0, 0, 1, 1), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dim.D2-2) > 0.3 {
		t.Fatalf("uniform 2-D points: D2 = %g, want ~2", dim.D2)
	}
	if math.Abs(dim.D0-2) > 0.3 {
		t.Fatalf("uniform 2-D points: D0 = %g, want ~2", dim.D0)
	}
}

func TestLinePointsDimensionNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		x := rng.Float64()
		pts[i] = geom.Point{X: x, Y: x} // points on the diagonal
	}
	dim, err := BoxCounting(pts, geom.NewRect(0, 0, 1, 1), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dim.D2-1) > 0.25 {
		t.Fatalf("diagonal points: D2 = %g, want ~1", dim.D2)
	}
	if math.Abs(dim.D0-1) > 0.25 {
		t.Fatalf("diagonal points: D0 = %g, want ~1", dim.D0)
	}
}

func TestSinglePointCluster(t *testing.T) {
	// All points identical: D2 should be ~0 (S2 constant across scales).
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{X: 0.3, Y: 0.7}
	}
	dim, err := BoxCounting(pts, geom.NewRect(0, 0, 1, 1), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dim.D2) > 0.05 {
		t.Fatalf("identical points: D2 = %g, want ~0", dim.D2)
	}
}

func TestModelEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	pts := make([]geom.Point, 20000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	m, err := Fit(pts, geom.NewRect(0, 0, 100, 100), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// For uniform data the power law is near-exact: a 10x10 query over
	// a 100x100 space should capture ~1% of the points.
	got := m.EstimateRange(10, 10)
	want := float64(len(pts)) * 0.01
	if got < want/2 || got > want*2 {
		t.Fatalf("EstimateRange(10,10) = %g, want ~%g", got, want)
	}
	// Monotone in query size.
	if m.EstimateRange(5, 5) >= m.EstimateRange(20, 20) {
		t.Fatal("estimate should grow with query size")
	}
	// Degenerate queries.
	if m.EstimateRange(0, 10) != 0 {
		t.Fatal("zero-width query should estimate 0")
	}
	if m.EstimateRange(-5, 10) != 0 {
		t.Fatal("negative width treated as empty")
	}
	// A query covering the whole space cannot exceed N.
	if got := m.EstimateRange(1000, 1000); got > float64(len(pts))+1e-9 {
		t.Fatalf("whole-space estimate %g exceeds N %d", got, len(pts))
	}
}

func TestSlope(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // slope 2
	if got := slope(x, y); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope = %g, want 2", got)
	}
	if got := slope([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Fatalf("degenerate slope = %g, want 0", got)
	}
}
