package reqtrace

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// openEnd marks a span that has not ended yet; it serializes as
// end_ns -1 so an abandoned span (a contained panic, a scatter
// goroutine still draining) is visible in the trace instead of
// pretending to have finished.
const openEnd = int64(-1)

// Attr is one key/value annotation on a span or event. Values are
// always strings, formatted by the caller with strconv — never %v of a
// float through a map — so serialized traces are byte-deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// Float builds a float attribute in shortest-round-trip form.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Event is a point-in-time annotation inside a span (a retry fired, a
// hedge launched, a breaker refused). NS is nanoseconds since the
// trace started, read from the trace's injected clock.
type Event struct {
	NS    int64  `json:"ns"`
	Name  string `json:"name"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Span is one timed operation in a request's trace tree. Spans are
// created through Trace.Root and StartChild, annotated with SetAttr
// and Event, and closed with End. All methods are safe for concurrent
// use, and every method is a no-op on a nil receiver (a nil *Span is a
// no-op), so instrumented code never guards on whether tracing is
// enabled.
//
// Timestamps are nanoseconds since the owning trace began, measured on
// the injected vclock.Clock — never the wall clock — so traces taken
// under the simulated clock are byte-deterministic in the seed.
type Span struct {
	tr   *Trace
	name string

	mu       sync.Mutex
	startNS  int64
	endNS    int64
	attrs    []Attr
	events   []Event
	children []*Span
}

// StartChild opens a sub-span under s. It returns nil — itself a
// no-op — when s is nil, so call chains need no guards.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, startNS: s.tr.nowNS(), endNS: openEnd}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr appends one annotation. Later writes win on duplicate keys.
// No-op on a nil receiver.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt appends one integer annotation. No-op on a nil receiver.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(v))
}

// SetFloat appends one float annotation in shortest-round-trip form.
// No-op on a nil receiver.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// Event records a point-in-time event inside the span. No-op on a nil
// receiver.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ns := s.tr.nowNS()
	s.mu.Lock()
	s.events = append(s.events, Event{NS: ns, Name: name, Attrs: attrs})
	s.mu.Unlock()
}

// End closes the span at the current clock reading. Ending twice keeps
// the first end time. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	ns := s.tr.nowNS()
	s.mu.Lock()
	if s.endNS == openEnd {
		s.endNS = ns
	}
	s.mu.Unlock()
}

// EndNoLaterThan closes the span at t or the current clock reading,
// whichever is earlier. An operation abandoned at a deadline uses this
// to record the deadline as its end: the goroutine observing the
// expiry may be scheduled after the clock has moved on, and stamping
// its late wake-up time would make the trace depend on goroutine
// scheduling rather than on when the operation logically ended.
// Ending twice keeps the first end time. No-op on a nil receiver.
func (s *Span) EndNoLaterThan(t time.Time) {
	if s == nil {
		return
	}
	ns := s.tr.nsAt(t)
	if now := s.tr.nowNS(); now < ns {
		ns = now
	}
	s.mu.Lock()
	if s.endNS == openEnd {
		s.endNS = ns
	}
	s.mu.Unlock()
}

// Name returns the span name ("" on a nil receiver).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attr returns the value of the named annotation, last write winning;
// ok is false when absent or the receiver is nil.
func (s *Span) Attr(key string) (value string, ok bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return "", false
}

// Children returns a copy of the direct sub-spans (nil on a nil
// receiver).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns every descendant span (including s itself) with the
// given name, in depth-first creation order. Nil receiver returns nil.
func (s *Span) Find(name string) []*Span {
	if s == nil {
		return nil
	}
	var out []*Span
	if s.name == name {
		out = append(out, s)
	}
	for _, c := range s.Children() {
		out = append(out, c.Find(name)...)
	}
	return out
}

// spanJSON is the serialized span. Field order is fixed by the struct,
// attrs and children keep their creation order, and events are sorted
// by (ns, name) — all slices, never map iteration — so the bytes are a
// pure function of the recorded data.
type spanJSON struct {
	Name     string     `json:"name"`
	StartNS  int64      `json:"start_ns"`
	EndNS    int64      `json:"end_ns"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Events   []Event    `json:"events,omitempty"`
	Children []spanJSON `json:"children,omitempty"`
}

// snapshot copies the span tree into its serializable form. The lock
// is released before recursing so no two span locks are ever held at
// once.
func (s *Span) snapshot() spanJSON {
	if s == nil {
		return spanJSON{}
	}
	s.mu.Lock()
	js := spanJSON{Name: s.name, StartNS: s.startNS, EndNS: s.endNS}
	js.Attrs = append([]Attr(nil), s.attrs...)
	events := append([]Event(nil), s.events...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].NS != events[j].NS {
			return events[i].NS < events[j].NS
		}
		return events[i].Name < events[j].Name
	})
	js.Events = events
	for _, c := range children {
		js.Children = append(js.Children, c.snapshot())
	}
	return js
}
