package reqtrace

import (
	"encoding/json"
	"net/http"
)

// tracesBody is the /debug/traces JSON payload: the recent ring plus
// the slow/degraded sampler, both oldest first.
type tracesBody struct {
	Count   int         `json:"count"`
	Dropped uint64      `json:"dropped"`
	Traces  []traceJSON `json:"traces"`
	Sampled []traceJSON `json:"sampled,omitempty"`
}

// Handler serves the retained traces as JSON on /debug/traces. A nil
// receiver serves 404.
func (t *Tracer) Handler() http.Handler {
	if t == nil {
		return http.NotFoundHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := tracesBody{Dropped: t.Dropped(), Traces: []traceJSON{}}
		for _, tr := range t.Recent() {
			body.Traces = append(body.Traces, tr.snapshot())
		}
		for _, tr := range t.Sampled() {
			body.Sampled = append(body.Sampled, tr.snapshot())
		}
		body.Count = len(body.Traces)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(body) // client gone is the only failure; nothing to do
	})
}
