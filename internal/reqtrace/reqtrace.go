// Package reqtrace is the request-scoped span tracer of the serving
// stack: every /estimate request carries a trace through the cache,
// singleflight, admission gate, scatter-gather and per-shard histogram
// walks, each layer contributing spans with timings, attributes and
// events (retries, hedges, breaker refusals, ladder rungs).
//
// Three consumers sit on top of the spans:
//
//   - a fixed-size lock-free ring (TraceStore) of recent traces served
//     as JSON on /debug/traces;
//   - a slow/degraded-query sampler retaining the full span tree of
//     any request that overstayed a latency threshold, errored, or was
//     answered below full quality;
//   - a QueryLog recorder emitting one NDJSON record per request
//     (rect, estimate, quality, fan-out, duration, request ID) that
//     JoinTrace converts into internal/trace format once ground truth
//     is joined — the capture half of replaying production traffic
//     against candidate statistics configurations.
//
// Determinism is a contract, not an accident: every timestamp is read
// from the injected vclock.Clock as nanoseconds since the trace began,
// attributes and children are ordered slices (never map iteration),
// and events are sorted by virtual time at serialization — so two
// `faultsim -sequential` runs of the same seed emit byte-identical
// span trees, and the fault-injection invariants can be proven from
// the trace itself. The spatialvet walltime analyzer runs over this
// package to keep wall-clock reads out of spans.
//
// Everything follows the telemetry nil-safety convention: a nil
// *Tracer, *Trace, *Span, *TraceStore or *QueryLog is a no-op, so
// instrumented code paths never check whether tracing is on.
package reqtrace

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Config tunes a Tracer. The zero value traces on the real clock with
// default ring sizes and no query log.
type Config struct {
	// Clock stamps every span. Nil means the system clock; the fault
	// simulation harness injects a vclock.Sim so traces are
	// seed-deterministic.
	Clock vclock.Clock
	// Ring is the recent-trace ring capacity. Default 256.
	Ring int
	// SampleRing is the slow/degraded sampler ring capacity. Default 64.
	SampleRing int
	// SlowThreshold is the end-to-end latency above which a trace is
	// retained by the sampler regardless of quality. Default 250ms
	// (the default scatter deadline: anything slower burned its whole
	// estimate budget).
	SlowThreshold time.Duration
	// QueryLog, when non-nil, receives one Record per finished request.
	QueryLog *QueryLog
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
	if c.Ring <= 0 {
		c.Ring = 256
	}
	if c.SampleRing <= 0 {
		c.SampleRing = 64
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	return c
}

// Tracer creates and retains request traces. Create with New; a nil
// *Tracer is a no-op everywhere, which is how tracing is disabled.
type Tracer struct {
	clk     vclock.Clock
	slow    time.Duration
	seq     atomic.Uint64
	recent  *TraceStore
	sampled *TraceStore
	qlog    *QueryLog

	// Telemetry (nil-safe until EnableTelemetry).
	occupancy   *telemetry.Gauge
	droppedCtr  *telemetry.Counter
	slowSampled *telemetry.Counter
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		clk:     cfg.Clock,
		slow:    cfg.SlowThreshold,
		recent:  NewTraceStore(cfg.Ring),
		sampled: NewTraceStore(cfg.SampleRing),
		qlog:    cfg.QueryLog,
	}
}

// EnableTelemetry registers the ring-occupancy gauge, overwrite-drop
// counter and slow-sampler hit counter in reg. Call before serving —
// the fields are written plainly. No-op on a nil receiver or nil reg.
func (t *Tracer) EnableTelemetry(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.occupancy = reg.Gauge("reqtrace_ring_occupancy",
		"Request traces currently retained in the recent-trace ring.")
	t.droppedCtr = reg.Counter("reqtrace_dropped_total",
		"Request traces overwritten (evicted) from the recent-trace ring.")
	t.slowSampled = reg.Counter("reqtrace_slow_sampled_total",
		"Traces retained by the slow/degraded-query sampler.")
}

// StartRequest opens a new trace rooted at a "serve.request" span and
// returns a context carrying both the root span and the request ID.
// On a nil receiver it returns ctx unchanged and a nil trace (both
// no-ops downstream).
func (t *Tracer) StartRequest(ctx context.Context, requestID string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	tr := &Trace{tracer: t, requestID: requestID, seq: t.seq.Add(1), start: t.clk.Now(), clk: t.clk}
	tr.root = &Span{tr: tr, name: "serve.request", endNS: openEnd}
	return ContextWithSpan(WithRequestID(ctx, requestID), tr.root), tr
}

// Recent returns the retained traces, oldest first (nil receiver: nil).
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	return t.recent.Snapshot()
}

// Sampled returns the slow/degraded traces, oldest first (nil
// receiver: nil).
func (t *Tracer) Sampled() []*Trace {
	if t == nil {
		return nil
	}
	return t.sampled.Snapshot()
}

// Dropped reports how many traces were overwritten in the recent ring
// (0 on a nil receiver).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.recent.Dropped()
}

// record files a finished trace into the ring, the sampler and the
// query log.
func (t *Tracer) record(tr *Trace) {
	if t.recent.Add(tr) {
		t.droppedCtr.Inc()
	}
	t.occupancy.Set(float64(t.recent.Len()))
	o := tr.outcome
	degraded := o.Err != "" || (o.Quality != "" && o.Quality != "full")
	if degraded || tr.durationNS >= int64(t.slow) {
		t.sampled.Add(tr)
		t.slowSampled.Inc()
	}
	t.qlog.Record(Record{
		RequestID:     tr.requestID,
		Table:         o.Table,
		Query:         o.Query,
		Estimate:      o.Estimate,
		Quality:       o.Quality,
		Partial:       o.Partial,
		Cached:        o.Cached,
		Shared:        o.Shared,
		ShardsQueried: o.ShardsQueried,
		ShardsMissed:  o.ShardsMissed,
		DurationNS:    tr.durationNS,
		Err:           o.Err,
	})
}

// Outcome is the per-request summary a serving layer hands to
// Trace.Finish: it becomes the root span's attributes and the query
// log record.
type Outcome struct {
	Table    string
	Query    [4]float64 // minx, miny, maxx, maxy
	Estimate float64
	// Quality is the answer grade ("full", "coarse", "uniform"; ""
	// when the request errored before producing one).
	Quality       string
	Partial       bool
	Cached        bool
	Shared        bool
	ShardsQueried int
	ShardsMissed  int
	// Err classifies a failed request ("shed", "panic", "timeout",
	// "canceled", "backend"); "" on success.
	Err string
}

// Trace is one request's span tree plus identity. A nil *Trace is a
// no-op. Concurrency: spans lock themselves; the identity fields are
// written once at StartRequest and the outcome once at Finish, before
// the trace is published to any ring.
type Trace struct {
	tracer    *Tracer
	requestID string
	seq       uint64
	start     time.Time
	clk       vclock.Clock
	root      *Span

	// Written by Finish, before publication.
	outcome    Outcome
	durationNS int64
}

// nowNS is the span timestamp source: nanoseconds since the trace
// began, on the injected clock.
func (tr *Trace) nowNS() int64 { return int64(tr.clk.Since(tr.start)) }

// nsAt converts an absolute clock reading to trace-relative
// nanoseconds (see Span.EndNoLaterThan).
func (tr *Trace) nsAt(t time.Time) int64 { return int64(t.Sub(tr.start)) }

// Root returns the root span (nil on a nil receiver).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// RequestID returns the request ID ("" on a nil receiver).
func (tr *Trace) RequestID() string {
	if tr == nil {
		return ""
	}
	return tr.requestID
}

// Seq returns the trace's global sequence number (0 on a nil
// receiver).
func (tr *Trace) Seq() uint64 {
	if tr == nil {
		return 0
	}
	return tr.seq
}

// DurationNS returns the end-to-end virtual duration recorded at
// Finish (0 on a nil receiver).
func (tr *Trace) DurationNS() int64 {
	if tr == nil {
		return 0
	}
	return tr.durationNS
}

// Outcome returns the summary recorded at Finish (zero on a nil
// receiver).
func (tr *Trace) Outcome() Outcome {
	if tr == nil {
		return Outcome{}
	}
	return tr.outcome
}

// Finish seals the trace: the outcome becomes root-span attributes,
// the root span ends, and the trace is filed into the tracer's rings
// and query log. Call exactly once per trace. No-op on a nil receiver.
func (tr *Trace) Finish(o Outcome) {
	if tr == nil {
		return
	}
	r := tr.root
	r.SetAttr("table", o.Table)
	r.SetAttr("query", formatQuery(o.Query))
	r.SetFloat("estimate", o.Estimate)
	r.SetAttr("quality", o.Quality)
	r.SetAttr("partial", boolStr(o.Partial))
	r.SetAttr("cached", boolStr(o.Cached))
	r.SetAttr("shared", boolStr(o.Shared))
	r.SetInt("shards_queried", o.ShardsQueried)
	r.SetInt("shards_missed", o.ShardsMissed)
	if o.Err != "" {
		r.SetAttr("error", o.Err)
	}
	r.End()
	tr.outcome = o
	r.mu.Lock()
	tr.durationNS = r.endNS
	r.mu.Unlock()
	tr.tracer.record(tr)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// Context plumbing. The span key carries the innermost live span (the
// trace is reachable through it); the request-ID key is separate so an
// ID can ride the context before — or without — a trace existing.
type spanCtxKey struct{}
type reqIDCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span. A nil
// sp returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFrom returns the current span in ctx, or nil (a no-op span).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the current span in ctx and returns a
// context carrying it. Without a current span it returns ctx and nil —
// both no-ops — so instrumentation never branches on tracing being on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := SpanFrom(ctx).StartChild(name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestIDFrom returns the request ID in ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDCtxKey{}).(string)
	return id
}
