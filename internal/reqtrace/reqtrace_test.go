package reqtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// TestNilSafety is the no-op contract: every exported method on a nil
// *Tracer, *Trace, *Span, *TraceStore and *QueryLog must be callable —
// instrumented code paths never guard on tracing being enabled.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, trace := tr.StartRequest(context.Background(), "id")
	if trace != nil {
		t.Error("nil tracer returned a non-nil trace")
	}
	if ctx == nil {
		t.Error("nil tracer dropped the context")
	}
	tr.EnableTelemetry(telemetry.NewRegistry())
	if got := tr.Recent(); got != nil {
		t.Errorf("nil tracer Recent() = %v", got)
	}
	if got := tr.Sampled(); got != nil {
		t.Errorf("nil tracer Sampled() = %v", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("nil tracer Dropped() = %d", got)
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Errorf("nil tracer handler status %d, want 404", rec.Code)
	}

	var tc *Trace
	tc.Finish(Outcome{})
	if tc.Root() != nil || tc.RequestID() != "" || tc.Seq() != 0 || tc.DurationNS() != 0 {
		t.Error("nil trace accessors not zero")
	}
	if (tc.Outcome() != Outcome{}) {
		t.Error("nil trace Outcome not zero")
	}

	var sp *Span
	if c := sp.StartChild("x"); c != nil {
		t.Error("nil span StartChild returned non-nil")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1.5)
	sp.Event("e", Str("a", "b"))
	sp.End()
	if sp.Name() != "" {
		t.Error("nil span has a name")
	}
	if _, ok := sp.Attr("k"); ok {
		t.Error("nil span has an attr")
	}
	if sp.Children() != nil || sp.Find("x") != nil {
		t.Error("nil span has descendants")
	}

	var st *TraceStore
	if st.Add(nil) || st.Len() != 0 || st.Dropped() != 0 || st.Snapshot() != nil {
		t.Error("nil store not a no-op")
	}

	var ql *QueryLog
	ql.Record(Record{})
	if ql.Records() != 0 || ql.Err() != nil {
		t.Error("nil query log not a no-op")
	}
	if err := ql.Close(); err != nil {
		t.Errorf("nil query log Close: %v", err)
	}

	// SpanFrom on a bare context is nil, and the whole chain stays
	// no-op through it.
	SpanFrom(context.Background()).StartChild("y").SetAttr("k", "v")
}

// oneScriptedTrace drives a fixed span script against a fresh tracer
// on its own virtual clock and returns the NDJSON bytes.
func oneScriptedTrace(t *testing.T) []byte {
	t.Helper()
	sim := vclock.NewSim(time.Unix(0, 0))
	var qbuf bytes.Buffer
	tracer := New(Config{Clock: sim, Ring: 8, QueryLog: NewQueryLog(&qbuf)})
	ctx, trace := tracer.StartRequest(context.Background(), "req-1")
	if got := RequestIDFrom(ctx); got != "req-1" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	root := SpanFrom(ctx)
	sim.Advance(time.Millisecond)
	child := root.StartChild("shard.scatter")
	child.SetInt("fanout", 2)
	// Two events at the same virtual instant, added in reverse name
	// order: serialization must sort them.
	child.Event("z.second")
	child.Event("a.first")
	sim.Advance(2 * time.Millisecond)
	child.SetFloat("estimate", 12.5)
	child.End()
	child.End() // double End keeps the first timestamp
	sim.Advance(time.Millisecond)
	trace.Finish(Outcome{Table: "t", Query: [4]float64{0, 0, 1, 1}, Estimate: 12.5, Quality: "full"})

	var out bytes.Buffer
	if err := WriteNDJSON(&out, tracer.Recent()); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	return out.Bytes()
}

// TestDeterministicSerialization: the same span script on the same
// virtual clock serializes to the same bytes, timestamps are relative
// to the trace start, and same-instant events sort by name.
func TestDeterministicSerialization(t *testing.T) {
	b1 := oneScriptedTrace(t)
	b2 := oneScriptedTrace(t)
	if !bytes.Equal(b1, b2) {
		t.Errorf("serializations differ:\n%s\n%s", b1, b2)
	}

	var js struct {
		RequestID  string `json:"request_id"`
		DurationNS int64  `json:"duration_ns"`
		Root       struct {
			Name     string `json:"name"`
			StartNS  int64  `json:"start_ns"`
			EndNS    int64  `json:"end_ns"`
			Children []struct {
				Name    string `json:"name"`
				StartNS int64  `json:"start_ns"`
				EndNS   int64  `json:"end_ns"`
				Events  []struct {
					Name string `json:"name"`
					NS   int64  `json:"ns"`
				} `json:"events"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(b1, &js); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b1)
	}
	if js.Root.Name != "serve.request" || js.Root.StartNS != 0 {
		t.Errorf("root = %q start %d, want serve.request at 0", js.Root.Name, js.Root.StartNS)
	}
	if js.DurationNS != int64(4*time.Millisecond) || js.Root.EndNS != js.DurationNS {
		t.Errorf("duration %d, root end %d, want %d", js.DurationNS, js.Root.EndNS, int64(4*time.Millisecond))
	}
	if len(js.Root.Children) != 1 {
		t.Fatalf("children = %d, want 1", len(js.Root.Children))
	}
	c := js.Root.Children[0]
	if c.StartNS != int64(time.Millisecond) || c.EndNS != int64(3*time.Millisecond) {
		t.Errorf("child [%d,%d], want [1ms,3ms]", c.StartNS, c.EndNS)
	}
	if len(c.Events) != 2 || c.Events[0].Name != "a.first" || c.Events[1].Name != "z.second" {
		t.Errorf("events not name-sorted at equal NS: %+v", c.Events)
	}
}

// TestRingEvictionAndSampler: the recent ring overwrites oldest-first
// and counts drops; the sampler keeps only slow or degraded traces;
// the telemetry gauges and counters track both.
func TestRingEvictionAndSampler(t *testing.T) {
	sim := vclock.NewSim(time.Unix(0, 0))
	reg := telemetry.NewRegistry()
	tracer := New(Config{Clock: sim, Ring: 2, SampleRing: 4, SlowThreshold: 10 * time.Millisecond})
	tracer.EnableTelemetry(reg)

	finish := func(id string, o Outcome, advance time.Duration) {
		_, tr := tracer.StartRequest(context.Background(), id)
		sim.Advance(advance)
		tr.Finish(o)
	}
	finish("fast-full", Outcome{Quality: "full"}, time.Millisecond)  // not sampled
	finish("degraded", Outcome{Quality: "coarse", Partial: true}, 0) // sampled: degraded
	finish("slow", Outcome{Quality: "full"}, 20*time.Millisecond)    // sampled: slow

	recent := tracer.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent = %d traces, want ring size 2", len(recent))
	}
	if recent[0].RequestID() != "degraded" || recent[1].RequestID() != "slow" {
		t.Errorf("ring kept %q,%q; want the two newest oldest-first", recent[0].RequestID(), recent[1].RequestID())
	}
	if tracer.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", tracer.Dropped())
	}
	sampled := tracer.Sampled()
	if len(sampled) != 2 || sampled[0].RequestID() != "degraded" || sampled[1].RequestID() != "slow" {
		ids := make([]string, len(sampled))
		for i, tr := range sampled {
			ids[i] = tr.RequestID()
		}
		t.Errorf("sampled = %v, want [degraded slow]", ids)
	}
	if v := reg.Counter("reqtrace_dropped_total", "").Value(); v != 1 {
		t.Errorf("reqtrace_dropped_total = %v, want 1", v)
	}
	if v := reg.Counter("reqtrace_slow_sampled_total", "").Value(); v != 2 {
		t.Errorf("reqtrace_slow_sampled_total = %v, want 2", v)
	}
	if v := reg.Gauge("reqtrace_ring_occupancy", "").Value(); v != 2 {
		t.Errorf("reqtrace_ring_occupancy = %v, want 2", v)
	}

	// The handler serves both rings.
	rec := httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status %d", rec.Code)
	}
	var body struct {
		Count   int               `json:"count"`
		Dropped uint64            `json:"dropped"`
		Traces  []json.RawMessage `json:"traces"`
		Sampled []json.RawMessage `json:"sampled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	if body.Count != 2 || body.Dropped != 1 || len(body.Traces) != 2 || len(body.Sampled) != 2 {
		t.Errorf("handler body count=%d dropped=%d traces=%d sampled=%d",
			body.Count, body.Dropped, len(body.Traces), len(body.Sampled))
	}
}

// TestConcurrentTracing hammers the tracer from many goroutines —
// spans, events, finishes and ring snapshots all at once — and is run
// under -race in CI.
func TestConcurrentTracing(t *testing.T) {
	tracer := New(Config{Ring: 8, SampleRing: 4})
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, tr := tracer.StartRequest(context.Background(), "r")
				sp := SpanFrom(ctx).StartChild("shard.scatter")
				var inner sync.WaitGroup
				for s := 0; s < 3; s++ {
					inner.Add(1)
					go func(s int) {
						defer inner.Done()
						c := sp.StartChild("shard.estimate")
						c.SetInt("shard", s)
						c.Event("probe")
						c.End()
					}(s)
				}
				// Snapshot concurrently with the shard goroutines still
				// writing — the reader must never block or race them.
				_, _ = tr.MarshalJSON()
				inner.Wait()
				sp.End()
				tr.Finish(Outcome{Quality: "full"})
			}
		}(w)
	}
	readerStop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-readerStop:
				return
			default:
				for _, tr := range tracer.Recent() {
					_ = tr.Root().Find("shard.estimate")
				}
				_ = tracer.Dropped()
			}
		}
	}()
	wg.Wait()
	close(readerStop)
	readerWG.Wait()
	if got := tracer.recent.Len(); got != 8 {
		t.Errorf("ring Len = %d, want full ring 8", got)
	}
	if tracer.Dropped() != workers*perWorker-8 {
		t.Errorf("Dropped = %d, want %d", tracer.Dropped(), workers*perWorker-8)
	}
}

// TestQueryLogRoundTrip: records round-trip through the NDJSON
// encoding, and JoinTrace keeps every error-free record while skipping
// failed requests.
func TestQueryLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ql := NewQueryLog(&buf)
	recs := []Record{
		{RequestID: "a", Table: "t", Query: [4]float64{0, 0, 10, 10}, Estimate: 42.5, Quality: "full", ShardsQueried: 3, DurationNS: 1000},
		{RequestID: "b", Table: "t", Query: [4]float64{1, 1, 2, 2}, Estimate: 7, Quality: "coarse", Partial: true, ShardsQueried: 3, ShardsMissed: 1, DurationNS: 2000},
		{RequestID: "c", Table: "t", Err: "shed"},
	}
	for _, r := range recs {
		ql.Record(r)
	}
	if ql.Records() != 3 || ql.Err() != nil {
		t.Fatalf("Records=%d Err=%v", ql.Records(), ql.Err())
	}
	got, err := ReadQueryLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadQueryLog: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}

	joined, err := JoinTrace(got, func(q geom.Rect) (int, error) { return int(q.Area()), nil })
	if err != nil {
		t.Fatalf("JoinTrace: %v", err)
	}
	if joined.Len() != 2 {
		t.Fatalf("joined %d queries, want 2 (error record skipped)", joined.Len())
	}
	if joined.Actual[0] != 100 || joined.Actual[1] != 1 {
		t.Errorf("joined actuals %v, want [100 1]", joined.Actual)
	}
	if (joined.Queries[0] != geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}) {
		t.Errorf("joined query 0 = %v", joined.Queries[0])
	}
}
