package reqtrace

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
)

// TraceStore is a fixed-size lock-free ring of finished traces.
// Writers claim a slot with one atomic increment and publish with one
// atomic pointer swap; readers snapshot without blocking writers. A
// nil *TraceStore is a no-op.
type TraceStore struct {
	slots   []atomic.Pointer[Trace]
	next    atomic.Uint64
	dropped atomic.Uint64
}

// NewTraceStore creates a ring holding the last n traces (n < 1 is
// clamped to 1).
func NewTraceStore(n int) *TraceStore {
	if n < 1 {
		n = 1
	}
	return &TraceStore{slots: make([]atomic.Pointer[Trace], n)}
}

// Add files a trace, overwriting the oldest slot when full, and
// reports whether an older trace was evicted. No-op (false) on a nil
// receiver or nil trace.
func (s *TraceStore) Add(tr *Trace) (evicted bool) {
	if s == nil || tr == nil {
		return false
	}
	i := s.next.Add(1) - 1
	old := s.slots[i%uint64(len(s.slots))].Swap(tr)
	if old != nil {
		s.dropped.Add(1)
		return true
	}
	return false
}

// Len reports how many traces are currently retained (0 on a nil
// receiver).
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	if n := s.next.Load(); n < uint64(len(s.slots)) {
		return int(n)
	}
	return len(s.slots)
}

// Dropped reports how many traces have been overwritten (0 on a nil
// receiver).
func (s *TraceStore) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Snapshot returns the retained traces ordered by trace sequence
// number, oldest first (nil on a nil receiver).
func (s *TraceStore) Snapshot() []*Trace {
	if s == nil {
		return nil
	}
	out := make([]*Trace, 0, len(s.slots))
	for i := range s.slots {
		if tr := s.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// traceJSON is one serialized trace.
type traceJSON struct {
	RequestID  string   `json:"request_id"`
	Seq        uint64   `json:"seq"`
	DurationNS int64    `json:"duration_ns"`
	Root       spanJSON `json:"root"`
}

// snapshot copies the whole trace into its serializable form.
func (tr *Trace) snapshot() traceJSON {
	if tr == nil {
		return traceJSON{}
	}
	return traceJSON{
		RequestID:  tr.requestID,
		Seq:        tr.seq,
		DurationNS: tr.durationNS,
		Root:       tr.root.snapshot(),
	}
}

// MarshalJSON serializes the trace's span tree deterministically.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(tr.snapshot())
}

// WriteNDJSON writes one JSON line per trace, in the given order. With
// traces from TraceStore.Snapshot the bytes are a pure function of the
// recorded data — the golden determinism test diffs two runs' output.
func WriteNDJSON(w io.Writer, traces []*Trace) error {
	for _, tr := range traces {
		raw, err := json.Marshal(tr.snapshot())
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}
