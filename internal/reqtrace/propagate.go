package reqtrace

import (
	"context"
	"net/http"
)

// Cross-node propagation: when the coordinator fans a request out to
// worker nodes over HTTP, the request identity and the calling span
// travel in headers, so a worker's trace can be joined back to the
// coordinator trace that caused it and the trace-driven invariant
// checks hold cluster-wide.
const (
	// HeaderRequestID carries the request ID across node hops (the
	// same header the serving tier echoes to clients).
	HeaderRequestID = "X-Request-Id"
	// HeaderParentSpan carries the name of the span that issued the
	// remote call, recorded on the receiving trace's root span as the
	// "parent_span" attribute.
	HeaderParentSpan = "X-Parent-Span"
)

// InjectHTTP stamps an outgoing cross-node request with the request
// ID and calling span carried by ctx. Missing values set no header.
func InjectHTTP(ctx context.Context, h http.Header) {
	if id := RequestIDFrom(ctx); id != "" {
		h.Set(HeaderRequestID, id)
	}
	if name := SpanFrom(ctx).Name(); name != "" {
		h.Set(HeaderParentSpan, name)
	}
}

// ExtractHTTP reads the propagation headers from an incoming request.
func ExtractHTTP(h http.Header) (requestID, parentSpan string) {
	return h.Get(HeaderRequestID), h.Get(HeaderParentSpan)
}

// StartRemoteRequest begins a trace for a request that arrived from
// another node, binding it to the originating request ID and
// recording the remote parent span (when present) on the root span.
// fallbackID is used when the caller sent no request ID. The nil
// contract matches StartRequest: a nil tracer returns ctx unchanged
// and a nil trace whose methods no-op.
func (t *Tracer) StartRemoteRequest(ctx context.Context, h http.Header, fallbackID string) (context.Context, *Trace) {
	reqID, parent := ExtractHTTP(h)
	if reqID == "" {
		reqID = fallbackID
	}
	ctx, tr := t.StartRequest(ctx, reqID)
	if parent != "" {
		tr.Root().SetAttr("parent_span", parent)
	}
	return ctx, tr
}
