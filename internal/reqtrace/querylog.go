package reqtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Record is one query-log line: everything needed to replay the
// request against candidate statistics once ground truth is joined.
// Field order is fixed by the struct, so serialized logs are
// byte-deterministic in the recorded data.
type Record struct {
	RequestID     string     `json:"request_id"`
	Table         string     `json:"table"`
	Query         [4]float64 `json:"query"` // minx, miny, maxx, maxy
	Estimate      float64    `json:"estimate"`
	Quality       string     `json:"quality"`
	Partial       bool       `json:"partial,omitempty"`
	Cached        bool       `json:"cached,omitempty"`
	Shared        bool       `json:"shared,omitempty"`
	ShardsQueried int        `json:"shards_queried"`
	ShardsMissed  int        `json:"shards_missed,omitempty"`
	DurationNS    int64      `json:"duration_ns"`
	Err           string     `json:"error,omitempty"`
}

// Rect returns the query rectangle.
func (r Record) Rect() geom.Rect {
	return geom.Rect{MinX: r.Query[0], MinY: r.Query[1], MaxX: r.Query[2], MaxY: r.Query[3]}
}

// formatQuery renders a rect attribute the same way the query log
// stores coordinates: shortest round-trip floats.
func formatQuery(q [4]float64) string {
	parts := make([]string, len(q))
	for i, v := range q {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

// QueryLog appends NDJSON records to a writer. Records are marshaled
// outside the lock and written line-atomically (one Write per record,
// unbuffered), so a log file is readable — and joinable — while the
// service still runs. A nil *QueryLog is a no-op.
type QueryLog struct {
	mu      sync.Mutex
	w       io.Writer
	err     error // first write error, latched
	closer  io.Closer
	records atomic.Uint64
}

// NewQueryLog records onto w.
func NewQueryLog(w io.Writer) *QueryLog { return &QueryLog{w: w} }

// OpenQueryLog opens (appending) or creates an NDJSON log file.
func OpenQueryLog(path string) (*QueryLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("reqtrace: query log %s: %w", path, err)
	}
	l := NewQueryLog(f)
	l.closer = f
	return l, nil
}

// Record appends one line. Write errors are latched and surfaced by
// Err/Close — a failing log disk must not fail serving. No-op on a nil
// receiver.
func (l *QueryLog) Record(rec Record) {
	if l == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		// A fixed-shape struct of strings, floats and bools cannot fail
		// to marshal; latch defensively rather than panic.
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
		return
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	if _, werr := l.w.Write(raw); werr != nil && l.err == nil {
		l.err = werr
	}
	l.mu.Unlock()
	l.records.Add(1)
}

// Records reports how many records were appended (0 on a nil
// receiver).
func (l *QueryLog) Records() uint64 {
	if l == nil {
		return 0
	}
	return l.records.Load()
}

// Err returns the first write error, if any (nil on a nil receiver).
func (l *QueryLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close closes the underlying file (when opened by OpenQueryLog) and
// returns the first latched write error. No-op on a nil receiver.
func (l *QueryLog) Close() error {
	if l == nil {
		return nil
	}
	err := l.Err()
	if l.closer != nil {
		if cerr := l.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadQueryLog parses an NDJSON query log.
func ReadQueryLog(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("reqtrace: query log line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reqtrace: query log read: %w", err)
	}
	return recs, nil
}

// ReadQueryLogFile parses an NDJSON query log file.
func ReadQueryLogFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("reqtrace: query log %s: %w", path, err)
	}
	defer f.Close()
	recs, err := ReadQueryLog(f)
	if err != nil {
		return nil, fmt.Errorf("reqtrace: query log %s: %w", path, err)
	}
	return recs, nil
}

// JoinTrace converts query-log records into an evaluation trace by
// joining each query with its exact count — the bridge from captured
// production traffic to internal/trace replay. Records that errored
// (Err != "") carry no answer and are skipped; everything else joins,
// so a clean log replays with zero loss. The count callback is
// typically an exact.Oracle or an indexed COUNT.
func JoinTrace(recs []Record, count func(q geom.Rect) (int, error)) (*trace.Trace, error) {
	t := &trace.Trace{}
	for _, rec := range recs {
		if rec.Err != "" {
			continue
		}
		q := rec.Rect()
		n, err := count(q)
		if err != nil {
			return nil, fmt.Errorf("reqtrace: join %s: %w", rec.RequestID, err)
		}
		t.Queries = append(t.Queries, q)
		t.Actual = append(t.Actual, n)
	}
	return t, nil
}
