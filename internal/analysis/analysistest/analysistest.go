// Package analysistest runs an analyzer over a testdata fixture
// directory and checks its diagnostics against `// want "regexp"`
// comments in the fixture source, mirroring
// golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches the expectation comment tail: one or more Go-quoted
// regular expressions after `// want`.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory, applies the analyzer, and reports
// any mismatch between actual diagnostics and the fixture's want
// comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunDirs(t, a, filepath.Dir(dir), filepath.Base(dir))
}

// RunDirs loads the named subdirectories of root as one package each —
// in dependency order, with earlier packages importable by later ones
// under their base name — and applies the analyzer to all of them
// through one shared fact store, so facts exported while analyzing an
// early package are visible in later ones. Diagnostics from every
// package are checked against the fixtures' want comments.
func RunDirs(t *testing.T, a *analysis.Analyzer, root string, subdirs ...string) {
	t.Helper()
	pkgs, err := analysis.LoadFixtureDirs(root, subdirs...)
	if err != nil {
		t.Fatalf("loading fixtures %s %v: %v", root, subdirs, err)
	}
	wants := make(map[string][]*expectation)
	for _, sub := range subdirs {
		ws, err := parseWants(filepath.Join(root, sub))
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", sub, err)
		}
		for k, v := range ws {
			// Keys are file base names; fixture files are uniquely
			// named across a multi-package fixture by convention.
			wants[k] = append(wants[k], v...)
		}
	}

	runner := analysis.NewRunner()
	for _, pkg := range pkgs {
		diags, err := runner.Run(pkg, []*analysis.Analyzer{a}, nil)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
			if !claim(wants[key], d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			}
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: no diagnostic matching %q", key, e.re)
			}
		}
	}
}

// claim marks the first unmatched expectation matching msg.
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants scans every fixture file for want comments, keyed by
// "file.go:line".
func parseWants(dir string) (map[string][]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wants := make(map[string][]*expectation)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, q := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want %s: %v", key, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", key, pat, err)
				}
				wants[key] = append(wants[key], &expectation{re: re})
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted strings from a want comment
// tail, e.g. `"a" "b"` -> ["\"a\"", "\"b\""].
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+end+2])
		s = rest[end+1:]
	}
}
