// Fixture for the floatcmp analyzer: raw float equality is flagged,
// epsilon/ordered/integer comparisons and the NaN idiom are clean.
package fixture

import "math"

type vec struct{ x, y float64 }

type pair struct{ a, b int }

func flagged(a, b float64, v, w vec, f32 float32) bool {
	if a == b { // want "floating-point equality"
		return true
	}
	if a != 0 { // want "floating-point equality"
		return true
	}
	if f32 == 1.5 { // want "floating-point equality"
		return true
	}
	return v == w // want "floating-point equality"
}

func clean(a, b float64, i, j int, p, q pair) bool {
	if i == j || p == q {
		return false
	}
	if math.Abs(a-b) < 1e-9 {
		return true
	}
	if a != a { // NaN self-test idiom is exact by design
		return false
	}
	const c, d = 1.0, 2.0
	if c == d { // both operands constant: folded at compile time
		return false
	}
	if a == 1 { //spatialvet:ignore floatcmp suppression directive is honored
		return true
	}
	//spatialvet:ignore floatcmp directive on the line above also counts
	if b == 2 {
		return false
	}
	return a < b
}
