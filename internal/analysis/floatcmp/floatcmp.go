// Package floatcmp flags raw == and != comparisons whose operands are
// (or contain) floating-point values. The estimators' numeric
// invariants — densities, count-weighted variances, MBR containment —
// must not depend on exact float equality; the geom package provides
// epsilon helpers (geom.FloatEq, geom.IsZero, geom.RectEq) instead.
//
// The NaN self-comparison idiom (x != x) is permitted, as are
// comparisons folded at compile time (both operands constant).
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "flag raw ==/!= on floating-point expressions; use the geom epsilon helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt := pass.TypesInfo.Types[be.X]
			yt := pass.TypesInfo.Types[be.Y]
			// Both operands constant: folded at compile time.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if !containsFloat(xt.Type, 0) && !containsFloat(yt.Type, 0) {
				return true
			}
			// The NaN test idiom (x != x, x == x) is exact by design.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point equality: %s %s %s; use geom.FloatEq/geom.IsZero or an explicit tolerance",
				types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
	return nil
}

// containsFloat reports whether a value of type t involves a
// floating-point component under comparison: a float basic type, or a
// struct/array whose elements do.
func containsFloat(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem(), depth+1)
	}
	return false
}
