// Fixture for the errdrop analyzer: silently dropped errors are
// flagged; handled, deferred, explicitly discarded, and conventional
// no-fail sinks are clean.
package fixture

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
)

func flagged(f *os.File, bw *bufio.Writer) {
	f.Close()           // want "unchecked error"
	fmt.Fprintf(f, "x") // want "unchecked error"
	os.Remove("gone")   // want "unchecked error"
	bw.Flush()          // want "unchecked error"
}

func clean(f *os.File) error {
	defer f.Close() // deferred cleanup is intent, not a dropped result

	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(&sb, "y")

	var buf bytes.Buffer
	buf.WriteByte('z')
	fmt.Fprintln(&buf, "w")

	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "sticky errors surface at Flush")
	if err := bw.Flush(); err != nil {
		return err
	}

	fmt.Println(sb.String())
	fmt.Fprintln(os.Stderr, "status")
	_ = os.Remove("gone") // explicit discard acknowledges the error
	return nil
}
