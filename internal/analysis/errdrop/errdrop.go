// Package errdrop is an errcheck-lite: it flags call statements that
// silently discard an error result in library code. Selectivity
// estimates that survive a failed histogram write are worse than a
// loud failure, so errors must be handled, propagated, or explicitly
// discarded with `_ =`.
//
// Conventional no-fail sinks are exempt: fmt printing to stdout/stderr
// or to in-memory/sticky-error writers (strings.Builder, bytes.Buffer,
// bufio.Writer — whose Flush, which surfaces the latched error, is
// still checked), and methods of those writers. Deferred calls
// (`defer f.Close()`) are statements of cleanup intent, not dropped
// results, and are not flagged. The spatialvet driver exempts cmd/
// and examples/ packages; test files are never analyzed.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flag statements that discard an error result; handle it or assign to _",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || allowed(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s contains an unchecked error; handle it or discard with _ =",
				types.ExprString(call.Fun))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// allowed reports whether the dropped error is conventional.
func allowed(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := pass.Callee(call)
	if fn == nil {
		return false
	}
	pkg := fn.Pkg()
	sig, _ := fn.Type().(*types.Signature)

	// Methods on in-memory / sticky-error writers never need per-call
	// checks; their Flush (bufio) surfaces the latched error and is not
	// exempt.
	if sig != nil && sig.Recv() != nil {
		if n := recvTypeName(sig.Recv().Type()); bufferedWriters[n] && fn.Name() != "Flush" {
			return true
		}
		return false
	}

	// fmt printing to conventional sinks.
	if pkg != nil && pkg.Path() == "fmt" {
		name := fn.Name()
		if name == "Print" || name == "Printf" || name == "Println" {
			return true
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return writerAllowed(pass, call.Args[0])
		}
	}
	return false
}

// bufferedWriters are receiver types whose write methods cannot
// meaningfully fail per call.
var bufferedWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"bufio.Writer":    true,
}

// recvTypeName renders a receiver type as "pkg.Name" regardless of
// pointerness.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// writerAllowed reports whether the Fprint destination is a
// conventional sink: stdout/stderr or an in-memory/sticky writer.
func writerAllowed(pass *analysis.Pass, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if v, ok := pass.ObjectOf(sel.Sel).(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	t := pass.TypesInfo.TypeOf(w)
	if t == nil {
		return false
	}
	return bufferedWriters[recvTypeName(t)]
}
