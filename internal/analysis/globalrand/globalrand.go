// Package globalrand flags use of math/rand's process-global source
// in library code. Experiments must be reproducible from a seed: all
// randomness flows through an injected *rand.Rand (constructed with
// rand.New(rand.NewSource(seed))), never through the shared global
// generator, which other packages and tests can perturb.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) and methods on
// *rand.Rand are allowed; only the package-level sampling functions
// that draw from the global source are flagged. Bare references count
// like calls: passing rand.Intn as a function value smuggles the
// global source just as effectively. The spatialvet driver exempts
// cmd/ and examples/ packages, and test files are never analyzed.
package globalrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the globalrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flag math/rand global-source draws in library code; inject a seeded *rand.Rand",
	Run:  run,
}

// globalFns are the package-level math/rand (and math/rand/v2)
// functions that consume the global source.
var globalFns = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(id).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand are the injected, reproducible path.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if !globalFns[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"rand.%s draws from math/rand's global source; inject a seeded *rand.Rand for reproducibility",
				fn.Name())
			return true
		})
	}
	return nil
}
