// Fixture for the globalrand analyzer: global-source draws are
// flagged, injected *rand.Rand construction and use are clean.
package fixture

import "math/rand"

func flagged() float64 {
	rand.Seed(42)                      // want "global source"
	_ = rand.Intn(10)                  // want "global source"
	_ = rand.Perm(5)                   // want "global source"
	_ = rand.NormFloat64()             // want "global source"
	rand.Shuffle(2, func(i, j int) {}) // want "global source"
	return rand.Float64()              // want "global source"
}

func clean(rng *rand.Rand) float64 {
	local := rand.New(rand.NewSource(1))
	z := rand.NewZipf(local, 1.1, 1, 100)
	_ = z.Uint64()
	_ = local.Intn(10)
	return rng.Float64()
}
