package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum one analyzer attaches to a program object in one
// package so that the same analyzer can observe it while analyzing a
// *different* package downstream in the dependency order. It is the
// minimal analogue of golang.org/x/tools/go/analysis facts: a fact
// type is a pointer-to-struct with a marker method, declared in the
// Analyzer's FactTypes, and must survive JSON serialization — every
// fact crosses an encode/decode boundary between the exporting and the
// importing package, exactly as vet facts cross between unitchecker
// processes, so unexported or unserializable state cannot leak
// through.
//
// Facts enable transitive call-graph reasoning across the
// `go list -deps` load order: the driver analyzes packages
// dependencies-first, so when package b is analyzed, facts exported on
// the objects of every package it imports are already available via
// Pass.ImportObjectFact.
type Fact interface {
	// AFact is a marker method; it does nothing.
	AFact()
}

// ObjectKey renders a stable identity for a package-level object (or a
// method) that survives the source-check/export-data split: the same
// function type-checked from source in its own package and loaded from
// compiler export data in a dependent package yields the same key.
// Objects without a stable key (locals, interface method params, …)
// yield "" and cannot carry facts.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			name = named.Obj().Name() + "." + name
		}
	}
	return obj.Pkg().Path() + "." + name
}

// factKey identifies one stored fact: which object, which fact type.
type factKey struct {
	obj string // ObjectKey of the annotated object
	typ string // fact type name, e.g. "ReachesWallTime"
}

// factSet holds one analyzer's facts across an entire load. Values are
// kept JSON-encoded (the serialization boundary); ImportObjectFact
// decodes on demand into the caller's prototype.
type factSet struct {
	declared map[reflect.Type]bool
	facts    map[factKey]json.RawMessage
}

func newFactSet(a *Analyzer) *factSet {
	fs := &factSet{
		declared: make(map[reflect.Type]bool, len(a.FactTypes)),
		facts:    make(map[factKey]json.RawMessage),
	}
	for _, f := range a.FactTypes {
		fs.declared[reflect.TypeOf(f)] = true
	}
	return fs
}

// factTypeName is the serialized type tag of a fact value.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	return t.Name()
}

func (fs *factSet) export(analyzer string, obj types.Object, f Fact) error {
	if !fs.declared[reflect.TypeOf(f)] {
		return fmt.Errorf("%s: fact type %T not declared in Analyzer.FactTypes", analyzer, f)
	}
	key := ObjectKey(obj)
	if key == "" {
		return fmt.Errorf("%s: object %v cannot carry facts (no stable key)", analyzer, obj)
	}
	raw, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("%s: serializing fact %T on %s: %v", analyzer, f, key, err)
	}
	fs.facts[factKey{obj: key, typ: factTypeName(f)}] = raw
	return nil
}

func (fs *factSet) importFact(obj types.Object, ptr Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	raw, ok := fs.facts[factKey{obj: key, typ: factTypeName(ptr)}]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, ptr) == nil
}

// keys returns every annotated object key, sorted, for deterministic
// iteration in tests and debugging output.
func (fs *factSet) keys() []string {
	seen := make(map[string]bool, len(fs.facts))
	for k := range fs.facts {
		seen[k.obj] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Runner applies analyzers to a sequence of packages, carrying each
// analyzer's exported facts from one package to the next. Packages
// must be presented dependencies-first (Load returns them in that
// order) for cross-package facts to be visible where they matter.
type Runner struct {
	sets map[string]*factSet
}

// NewRunner returns a Runner with empty fact stores.
func NewRunner() *Runner {
	return &Runner{sets: make(map[string]*factSet)}
}

// Run applies the analyzers to pkg. Diagnostics are collected only
// from analyzers for which report returns true (report == nil keeps
// everything); fact export happens regardless, so an out-of-scope
// package still contributes facts that flag its in-scope callers.
// Results are filtered by //spatialvet:ignore directives and sorted by
// position.
func (r *Runner) Run(pkg *Package, analyzers []*Analyzer, report func(name string) bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		fs, ok := r.sets[a.Name]
		if !ok {
			fs = newFactSet(a)
			r.sets[a.Name] = fs
		}
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			analyzer:  a,
			facts:     fs,
		}
		name := a.Name
		keep := report == nil || report(name)
		pass.Report = func(d Diagnostic) {
			if !keep {
				return
			}
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		if pass.factErr != nil {
			return nil, pass.factErr
		}
	}
	ignored := ignoreDirectives(pkg)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !ignored[ignoreKey{pos.Filename, pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// FactKeys lists the object keys carrying facts for the named
// analyzer, sorted. Intended for tests.
func (r *Runner) FactKeys(analyzer string) []string {
	fs, ok := r.sets[analyzer]
	if !ok {
		return nil
	}
	return fs.keys()
}
