package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// DepOnly marks a module-local package loaded only because a
	// requested package depends on it: fact-propagating analyzers run
	// over it (its facts flag callers in requested packages) but its
	// own diagnostics are not reported.
	DepOnly bool
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns and decodes the package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModulePath reports the main module's path as of dir ("" for the
// current directory).
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Loader parses and type-checks packages against compiler export data
// produced by `go list -export`, optionally chaining in packages it
// already checked from source (multi-package fixtures).
type Loader struct {
	Fset *token.FileSet
	// exports maps import paths to export-data files.
	exports map[string]string
	// src maps import paths to already-source-checked packages, tried
	// before export data so fixture packages can import one another.
	src map[string]*types.Package
	imp types.Importer
}

// NewLoader builds a loader resolving imports through the given
// export-data map.
func NewLoader(exports map[string]string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: exports,
		src:     make(map[string]*types.Package),
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer: source-checked packages win, then
// compiler export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.src[path]; ok {
		return p, nil
	}
	return l.imp.Import(path)
}

// AddSource registers an already-checked package so later Check calls
// can import it by path.
func (l *Loader) AddSource(path string, p *types.Package) { l.src[path] = p }

// Check parses the named files (relative to dir) and type-checks them
// as the package with the given import path.
func (l *Loader) Check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Fset:  l.Fset,
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load lists the packages matching patterns below dir (the module
// root; "" means the current directory), type-checks every non-stdlib
// root match from source, and returns them in the `go list -deps`
// order: dependencies strictly before dependents. Fact-propagating
// analyzers rely on that order — a package's facts are always computed
// before any package importing it is analyzed. Dependencies are
// resolved through export data, so only the analyzed packages
// themselves are re-type-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(dir)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	loader := NewLoader(exports)
	var out []*Package
	for _, p := range listed {
		if p.Standard {
			continue
		}
		// Module-local dependencies of the requested packages are
		// source-checked too (DepOnly) so fact-propagating analyzers
		// see the whole in-module call graph even under narrowed
		// patterns; out-of-module deps stay export-data-only.
		if p.DepOnly && p.ImportPath != modPath && !strings.HasPrefix(p.ImportPath, modPath+"/") {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// Cgo packages cannot be type-checked from plain source;
			// none exist in this module.
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = p.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture type-checks a single directory of Go files (e.g. an
// analyzer's testdata fixture) that imports only packages resolvable
// by the go toolchain — the standard library for test fixtures.
func LoadFixture(dir string) (*Package, error) {
	pkgs, err := LoadFixtureDirs(filepath.Dir(dir), filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// fixtureFiles lists the .go files of one fixture directory and the
// import paths they mention.
func fixtureFiles(dir string) (files []string, imports map[string]bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imports = make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, nil, err
		}
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	return files, imports, nil
}

// LoadFixtureDirs type-checks the named subdirectories of root as one
// fixture package each, in the given order, with earlier packages
// importable by later ones under their directory base name — the
// multi-package shape fact-propagation tests need (package "a" defines
// a helper, package "b" imports "a" and calls it). Non-sibling imports
// resolve through toolchain export data; the packages are returned in
// argument (dependency) order.
func LoadFixtureDirs(root string, subdirs ...string) ([]*Package, error) {
	if len(subdirs) == 0 {
		return nil, fmt.Errorf("no fixture directories given")
	}
	sibling := make(map[string]bool, len(subdirs))
	for _, sub := range subdirs {
		sibling[filepath.Base(sub)] = true
	}
	files := make(map[string][]string, len(subdirs))
	imports := make(map[string]bool)
	for _, sub := range subdirs {
		fs, imps, err := fixtureFiles(filepath.Join(root, sub))
		if err != nil {
			return nil, err
		}
		files[sub] = fs
		for p := range imps {
			if !sibling[p] {
				imports[p] = true
			}
		}
	}
	patterns := make([]string, 0, len(imports))
	for p := range imports {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)

	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(root, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	loader := NewLoader(exports)
	out := make([]*Package, 0, len(subdirs))
	for _, sub := range subdirs {
		path := filepath.Base(sub)
		pkg, err := loader.Check(path, filepath.Join(root, sub), files[sub])
		if err != nil {
			return nil, err
		}
		loader.AddSource(path, pkg.Types)
		out = append(out, pkg)
	}
	return out, nil
}
