package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns and decodes the package stream.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ModulePath reports the main module's path as of dir ("" for the
// current directory).
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Loader parses and type-checks packages against compiler export data
// produced by `go list -export`.
type Loader struct {
	Fset *token.FileSet
	// exports maps import paths to export-data files.
	exports map[string]string
	imp     types.Importer
}

// NewLoader builds a loader resolving imports through the given
// export-data map.
func NewLoader(exports map[string]string) *Loader {
	l := &Loader{Fset: token.NewFileSet(), exports: exports}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// Check parses the named files (relative to dir) and type-checks them
// as the package with the given import path.
func (l *Loader) Check(path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l.imp}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Fset:  l.Fset,
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load lists the packages matching patterns below dir (the module
// root; "" means the current directory), type-checks every non-stdlib
// root match from source, and returns them sorted by import path.
// Dependencies are resolved through export data, so only the analyzed
// packages themselves are re-type-checked.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	loader := NewLoader(exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// Cgo packages cannot be type-checked from plain source;
			// none exist in this module.
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := loader.Check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFixture type-checks a single directory of Go files (e.g. an
// analyzer's testdata fixture) that imports only packages resolvable
// by the go toolchain — the standard library for test fixtures.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var fileNames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			fileNames = append(fileNames, e.Name())
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(fileNames)

	// Discover the fixture's imports so their export data can be
	// requested from the toolchain.
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	pkgName := ""
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		pkgName = f.Name.Name
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			imports[p] = true
		}
	}
	patterns := make([]string, 0, len(imports))
	for p := range imports {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)

	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(dir, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return NewLoader(exports).Check(pkgName, dir, fileNames)
}
