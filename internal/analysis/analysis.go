// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. The repository
// cannot vendor x/tools, so this package provides the minimal subset
// the spatialvet analyzers need: an Analyzer descriptor, a per-package
// Pass carrying syntax and type information, and Diagnostic reporting.
//
// Type information comes from the go toolchain itself: packages are
// loaded with `go list -deps -export`, which yields compiler export
// data for every dependency, and each analyzed package is parsed and
// type-checked from source against those export files — the same
// architecture as cmd/vet's unitchecker, without the vettool protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics, e.g.
	// "floatcmp".
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces. The first line is the summary.
	Doc string
	// FactTypes lists prototype values of every Fact type this
	// analyzer exports. An analyzer with FactTypes participates in
	// cross-package reasoning: the driver runs it over every package
	// in dependency order (reporting only in scoped packages) so its
	// facts are available wherever its diagnostics fire.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries everything an Analyzer needs to inspect one package.
type Pass struct {
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	analyzer *Analyzer
	facts    *factSet
	factErr  error
}

// Path returns the package import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf returns the object denoted by ident id, consulting Defs
// then Uses — the one resolution path every analyzer shares instead of
// re-deriving object identity from the AST.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// Callee returns the statically-resolved function or method called by
// call, or nil when the callee is dynamic (a function value, an
// interface method through a non-selector, a conversion, …).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// IsNamedType reports whether t is the named type path.name (pointers
// are not dereferenced; callers unwrap if they mean to).
func IsNamedType(t types.Type, path, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// ExportObjectFact attaches fact to obj for downstream packages. The
// fact type must appear in the analyzer's FactTypes and obj must be a
// package-level object or method of this or an imported package. A
// bad export is an analyzer bug and fails the run.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		p.factErr = fmt.Errorf("%s: ExportObjectFact outside a Runner", p.analyzerName())
		return
	}
	if err := p.facts.export(p.analyzerName(), obj, fact); err != nil && p.factErr == nil {
		p.factErr = err
	}
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// ptr, reporting whether one was found. Facts exported by earlier
// packages in the load order and by this package so far are visible.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importFact(obj, ptr)
}

func (p *Pass) analyzerName() string {
	if p.analyzer != nil {
		return p.analyzer.Name
	}
	return "analysis"
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// RunAnalyzers applies each analyzer to pkg (with a fresh fact store)
// and returns the collected diagnostics sorted by position, minus any
// suppressed by //spatialvet:ignore directives. Analyzer errors (not
// findings) are returned immediately. Multi-package fact propagation
// needs a shared Runner instead.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewRunner().Run(pkg, analyzers, nil)
}

// ignoreKey identifies one suppressed (file, line, analyzer) triple.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirectives scans the package's comments for
//
//	//spatialvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// directives. A directive suppresses the named analyzers on its own
// line (trailing comment) and on the following line (directive on the
// line above the offense). The reason is mandatory by convention but
// not enforced.
func ignoreDirectives(pkg *Package) map[ignoreKey]bool {
	const prefix = "spatialvet:ignore"
	ignored := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				fields := strings.Fields(text[len(prefix):])
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					ignored[ignoreKey{pos.Filename, pos.Line, name}] = true
					ignored[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return ignored
}
