// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. The repository
// cannot vendor x/tools, so this package provides the minimal subset
// the spatialvet analyzers need: an Analyzer descriptor, a per-package
// Pass carrying syntax and type information, and Diagnostic reporting.
//
// Type information comes from the go toolchain itself: packages are
// loaded with `go list -deps -export`, which yields compiler export
// data for every dependency, and each analyzed package is parsed and
// type-checked from source against those export files — the same
// architecture as cmd/vet's unitchecker, without the vettool protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics, e.g.
	// "floatcmp".
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces. The first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries everything an Analyzer needs to inspect one package.
type Pass struct {
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// Path returns the package import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the driver.
	Analyzer string
}

// RunAnalyzers applies each analyzer to pkg and returns the collected
// diagnostics sorted by position, minus any suppressed by
// //spatialvet:ignore directives. Analyzer errors (not findings) are
// returned immediately.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	ignored := ignoreDirectives(pkg)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !ignored[ignoreKey{pos.Filename, pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreKey identifies one suppressed (file, line, analyzer) triple.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirectives scans the package's comments for
//
//	//spatialvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// directives. A directive suppresses the named analyzers on its own
// line (trailing comment) and on the following line (directive on the
// line above the offense). The reason is mandatory by convention but
// not enforced.
func ignoreDirectives(pkg *Package) map[ignoreKey]bool {
	const prefix = "spatialvet:ignore"
	ignored := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				fields := strings.Fields(text[len(prefix):])
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					ignored[ignoreKey{pos.Filename, pos.Line, name}] = true
					ignored[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return ignored
}
