package walltime_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, "testdata")
}

// TestWalltimeFactsAcrossPackages is the fact-mechanism end-to-end
// test: package a's transitive wall-clock reachability must flag the
// call site in package b with the full chain in the message.
func TestWalltimeFactsAcrossPackages(t *testing.T) {
	analysistest.RunDirs(t, walltime.Analyzer, "testdata", "multi/a", "multi/b")
}
