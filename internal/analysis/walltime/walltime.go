// Package walltime enforces the determinism contract from the vclock
// work: the serving stack (serve, shard, resilience, faultsim,
// catalog) must read time only through an injected vclock.Clock, never
// from the wall clock. One stray time.Now() silently breaks
// seed-deterministic faultsim replay — the reports stop being
// byte-identical per seed and every invariant check loses its
// reproduction value.
//
// The analyzer is transitive: it exports a ReachesWallTime fact on
// every function that directly or indirectly reaches a wall-clock
// primitive (time.Now/Sleep/After/Tick/NewTimer/NewTicker/AfterFunc/
// Since/Until, context.WithTimeout/WithDeadline), and flags both
// direct calls and calls into fact-bearing functions of other
// packages, printing the full call chain. internal/vclock is the
// blessed wrapper and internal/telemetry is observability-only (its
// wall-clock latency observations never feed replayed output), so
// neither exports facts nor is flagged.
//
// The spatialvet driver reports walltime findings only in the
// contract packages; everywhere else the analyzer runs silently to
// keep the fact graph complete.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// ReachesWallTime marks a function from which a wall-clock primitive
// is reachable without passing through internal/vclock.
type ReachesWallTime struct {
	// Leaf is the wall-clock primitive reached, e.g. "time.Now".
	Leaf string
	// Chain is the call path from the annotated function to the leaf,
	// e.g. ["a.Deep", "a.helper", "time.Now"].
	Chain []string
}

// AFact marks ReachesWallTime as a fact type.
func (*ReachesWallTime) AFact() {}

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name:      "walltime",
	Doc:       "flag paths that reach wall-clock time without going through vclock.Clock",
	FactTypes: []analysis.Fact{(*ReachesWallTime)(nil)},
	Run:       run,
}

// leaves are the wall-clock primitives, keyed by package path then
// function name.
var leaves = map[string]map[string]bool{
	"time": {
		"Now": true, "Sleep": true, "After": true, "Tick": true,
		"NewTimer": true, "NewTicker": true, "AfterFunc": true,
		"Since": true, "Until": true,
	},
	"context": {
		"WithTimeout": true, "WithDeadline": true,
	},
}

// exemptSuffixes are packages allowed to touch the wall clock: vclock
// is the injection seam itself, telemetry is observability-only.
var exemptSuffixes = []string{"internal/vclock", "internal/telemetry"}

func exempt(path string) bool {
	for _, s := range exemptSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// funcInfo accumulates what one function body reaches.
type funcInfo struct {
	obj *types.Func
	// directLeaf is the first wall-clock primitive called directly.
	directLeaf string
	// samePkg are statically-resolved callees declared in this package.
	samePkg []*types.Func
	// importedFact is the first cross-package fact-bearing callee's fact.
	importedFact *ReachesWallTime
	// reach is the computed fact, nil until known.
	reach *ReachesWallTime
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Path()) {
		return nil
	}

	infos := make(map[*types.Func]*funcInfo)
	var order []*funcInfo

	// Pass 1: collect per-function direct reachability.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.ObjectOf(fd.Name).(*types.Func)
			if obj == nil {
				continue
			}
			info := &funcInfo{obj: obj}
			infos[obj] = info
			order = append(order, info)
			collect(pass, fd.Body, info)
		}
	}

	// Pass 2: fixpoint over same-package call edges. Iteration is
	// deterministic: functions in declaration order, repeated until no
	// fact changes.
	for changed := true; changed; {
		changed = false
		for _, info := range order {
			if info.reach != nil {
				continue
			}
			if info.directLeaf != "" {
				info.reach = &ReachesWallTime{
					Leaf:  info.directLeaf,
					Chain: []string{qualName(info.obj), info.directLeaf},
				}
				changed = true
				continue
			}
			if info.importedFact != nil {
				info.reach = &ReachesWallTime{
					Leaf:  info.importedFact.Leaf,
					Chain: append([]string{qualName(info.obj)}, info.importedFact.Chain...),
				}
				changed = true
				continue
			}
			for _, callee := range info.samePkg {
				ci := infos[callee]
				if ci != nil && ci.reach != nil {
					info.reach = &ReachesWallTime{
						Leaf:  ci.reach.Leaf,
						Chain: append([]string{qualName(info.obj)}, ci.reach.Chain...),
					}
					changed = true
					break
				}
			}
		}
	}

	// Export facts so downstream packages see through this one.
	for _, info := range order {
		if info.reach != nil {
			pass.ExportObjectFact(info.obj, info.reach)
		}
	}

	// Pass 3: report. Direct leaf calls are reported at their call
	// site; calls into fact-bearing functions of *other* packages are
	// reported with the full chain (intra-package transitive callers
	// are not re-reported — the direct site already is).
	report(pass)
	return nil
}

// collect records the wall-clock-relevant calls under body.
func collect(pass *analysis.Pass, body ast.Node, info *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case isLeaf(fn):
			if info.directLeaf == "" {
				info.directLeaf = qualName(fn)
			}
		case fn.Pkg() == pass.Pkg:
			info.samePkg = append(info.samePkg, fn)
		case !exempt(fn.Pkg().Path()):
			if info.importedFact == nil {
				var fact ReachesWallTime
				if pass.ImportObjectFact(fn, &fact) {
					info.importedFact = &fact
				}
			}
		}
		return true
	})
}

// report emits one diagnostic per offending call site.
func report(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if isLeaf(fn) {
				pass.Reportf(call.Pos(),
					"%s reads the wall clock; inject vclock.Clock so faultsim replay stays seed-deterministic",
					qualName(fn))
				return true
			}
			if fn.Pkg() == pass.Pkg || exempt(fn.Pkg().Path()) {
				return true
			}
			var fact ReachesWallTime
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(call.Pos(),
					"call to %s reaches %s (%s); thread a vclock.Clock through it",
					qualName(fn), fact.Leaf, strings.Join(fact.Chain, " -> "))
			}
			return true
		})
	}
}

// isLeaf reports whether fn is a wall-clock primitive.
func isLeaf(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	names := leaves[fn.Pkg().Path()]
	if names == nil || !names[fn.Name()] {
		return false
	}
	// Methods (e.g. time.Time.Sub) are not leaves; only the
	// package-level clock readers are.
	sig, _ := fn.Type().(*types.Signature)
	return sig == nil || sig.Recv() == nil
}

// qualName renders "pkg.Func" with the package's base path element —
// short enough for a message, unique enough for a chain.
func qualName(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	path := pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return path + "." + name
}
