// Fixture for the walltime analyzer: direct wall-clock calls, same
// package transitivity (direct site flagged once, callers not
// re-flagged), and the ignore directive.
package fixture

import (
	"context"
	"time"
)

func directNow() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func directSleep() {
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
}

func directSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func directTimer() *time.Timer {
	return time.NewTimer(time.Minute) // want "time.NewTimer reads the wall clock"
}

func directCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want "context.WithTimeout reads the wall clock"
}

// transitiveCaller calls directNow; the direct site above is already
// flagged, so this same-package call is not re-reported.
func transitiveCaller() time.Time {
	return directNow()
}

// Durations and formatting do not read the clock.
func pureTime(t time.Time) string {
	d := 3 * time.Second
	_ = d
	return t.Format(time.RFC3339)
}

// Methods on time.Time are not leaves.
func timeMath(t time.Time) time.Time {
	return t.Add(time.Hour)
}

func ignored() time.Time {
	//spatialvet:ignore walltime fixture exercises the ignore directive
	return time.Now()
}
