// Package a is the upstream half of the fact-propagation fixture: its
// exported Deep reaches time.Now only through an unexported helper, so
// only the fact mechanism can tell a caller in another package.
package a

import "time"

func helper() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// Deep reaches the wall clock transitively; the exported fact carries
// the chain a.Deep -> a.helper -> time.Now.
func Deep() time.Time {
	return helper()
}

// Pure never touches the clock; no fact, no finding at call sites.
func Pure(x int) int { return x * 2 }
