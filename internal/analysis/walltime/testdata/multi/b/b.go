// Package b imports a and calls its transitively-wall-clocked Deep:
// the diagnostic must fire here, in the calling package, with the full
// call chain recovered from the serialized fact.
package b

import "a"

func UsesDeep() interface{} {
	return a.Deep() // want "call to a.Deep reaches time.Now .a.Deep -> a.helper -> time.Now."
}

func UsesPure() int {
	return a.Pure(21)
}
