// Fixture for the mapiter analyzer: map ranges feeding
// order-sensitive sinks are flagged; the collect-then-sort idiom and
// order-insensitive bodies are clean.
package fixture

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func emitUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want "Fprintf inside a range over a map emits nondeterministic output"
	}
}

func buildUnsorted(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside a range over a map emits nondeterministic output"
	}
	return b.String()
}

func collectNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "keys accumulates it and is never sorted afterwards"
	}
	return keys
}

// collectThenSort is the blessed idiom.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice uses sort.Slice on struct elements.
func collectThenSortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Order-insensitive bodies: sums, map writes, deletes.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Per-iteration locals are rebuilt each pass and carry no cross-key
// order.
func perIterationLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

// Ranging a slice is always fine, sinks and all.
func sliceRange(keys []string) {
	for _, k := range keys {
		fmt.Println(k)
	}
}

func ignoredEmit(m map[string]int) {
	for k := range m {
		//spatialvet:ignore mapiter fixture exercises the ignore directive
		fmt.Println(k)
	}
}
