// Package mapiter enforces the byte-identical-output contract: Go map
// iteration order is deliberately randomized, so ranging over a map
// while writing to an encoder, report, hash, or order-preserving slice
// yields different bytes on every run — exactly the failure mode the
// faultsim per-seed report equality and the Prometheus exposition
// tests guard against.
//
// Flagged: a range over a map whose body (a) calls an order-sensitive
// sink (Write/WriteString/Fprintf/Print/Encode/Sum/…), or (b) appends
// to a slice declared outside the loop that is never passed to a
// sort.* / slices.Sort* call later in the same function. The
// collect-then-sort idiom — append keys, sort, range the slice — is
// therefore clean, as are order-insensitive bodies (map writes,
// counter sums, deletes).
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive output without an intervening sort",
	Run:  run,
}

// sinkNames are method/function names whose call order changes the
// observable output.
var sinkNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "EncodeToken": true,
	"Sum": true, "Sum32": true, "Sum64": true,
	"printf": true, // the repo's stickyWriter convention
}

// sortCalls recognize sort.* and slices.Sort* consumers.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) (sorted ast.Expr, ok bool) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil, false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Strings", "Ints", "Float64s", "Sort", "Stable":
			return call.Args[0], true
		}
	case "slices":
		if strings.HasPrefix(fn.Name(), "Sort") {
			return call.Args[0], true
		}
	}
	return nil, false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fnBody := enclosingBody(n)
			if fnBody == nil {
				return true
			}
			ast.Inspect(fnBody, func(m ast.Node) bool {
				rng, ok := m.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkRange(pass, fnBody, rng)
				return true
			})
			return false // enclosingBody recursion handles nesting
		})
	}
	return nil
}

// enclosingBody returns n's body when n declares a function.
func enclosingBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkRange inspects one map-range statement inside fnBody.
func checkRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Sink calls inside the body are order-sensitive, full stop.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		var name string
		if ok {
			name = sel.Sel.Name
		} else if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
			name = id.Name
		}
		if sinkNames[name] {
			pass.Reportf(call.Pos(),
				"map iteration order is random: %s inside a range over a map emits nondeterministic output; collect keys and sort first",
				name)
		}
		return true
	})

	// Appends to outer slices must be sorted after the loop.
	appends := map[types.Object]*ast.CallExpr{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(target)
		if obj == nil || obj.Pos() == 0 {
			return true
		}
		// Declared inside the loop body: rebuilt per iteration,
		// order-irrelevant beyond the element level.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			return true
		}
		if _, seen := appends[obj]; !seen {
			appends[obj] = call
		}
		return true
	})
	if len(appends) == 0 {
		return
	}

	// A later sort of the same slice object launders the order.
	sortedObjs := map[types.Object]bool{}
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if arg, ok := isSortCall(pass, call); ok {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					sortedObjs[obj] = true
				}
			}
		}
		return true
	})
	for obj, call := range appends {
		if !sortedObjs[obj] {
			pass.Reportf(call.Pos(),
				"map iteration order is random: %s accumulates it and is never sorted afterwards; sort %s (or the keys) before use",
				obj.Name(), obj.Name())
		}
	}
}
