package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Tag string
}

func (*testFact) AFact() {}

type otherFact struct{ N int }

func (*otherFact) AFact() {}

// fakeObj builds a package-level *types.Func for key tests.
func fakeFunc(pkgPath, name string) *types.Func {
	pkg := types.NewPackage(pkgPath, "p")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func fakeMethod(pkgPath, typeName, name string) *types.Func {
	pkg := types.NewPackage(pkgPath, "p")
	tn := types.NewTypeName(token.NoPos, pkg, typeName, nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "r", types.NewPointer(named))
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func TestObjectKeyStability(t *testing.T) {
	// The same function built twice (as source-check and export-data
	// load would) must produce identical keys.
	a1 := fakeFunc("repro/internal/catalog", "Analyze")
	a2 := fakeFunc("repro/internal/catalog", "Analyze")
	if ObjectKey(a1) == "" || ObjectKey(a1) != ObjectKey(a2) {
		t.Fatalf("ObjectKey not stable: %q vs %q", ObjectKey(a1), ObjectKey(a2))
	}
	m := fakeMethod("repro/internal/catalog", "Catalog", "Analyze")
	if got, want := ObjectKey(m), "repro/internal/catalog.Catalog.Analyze"; got != want {
		t.Fatalf("method key = %q, want %q", got, want)
	}
	if ObjectKey(m) == ObjectKey(a1) {
		t.Fatalf("method and function keys collide: %q", ObjectKey(m))
	}
	if ObjectKey(nil) != "" {
		t.Fatalf("nil object key = %q, want empty", ObjectKey(nil))
	}
}

func TestFactRoundTripThroughSerialization(t *testing.T) {
	a := &Analyzer{Name: "test", FactTypes: []Fact{(*testFact)(nil), (*otherFact)(nil)}}
	fs := newFactSet(a)
	obj := fakeFunc("repro/internal/serve", "Estimate")

	if err := fs.export("test", obj, &testFact{Tag: "reaches time.Now"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.export("test", obj, &otherFact{N: 7}); err != nil {
		t.Fatal(err)
	}

	// Import through a fresh object with the same identity, as a
	// dependent package's export-data view would present it.
	var tf testFact
	if !fs.importFact(fakeFunc("repro/internal/serve", "Estimate"), &tf) {
		t.Fatal("fact not found through a distinct object with the same key")
	}
	if tf.Tag != "reaches time.Now" {
		t.Fatalf("fact did not survive serialization: %+v", tf)
	}
	var of otherFact
	if !fs.importFact(obj, &of) || of.N != 7 {
		t.Fatalf("second fact type lost: %+v", of)
	}

	// A different function must not see the fact.
	var miss testFact
	if fs.importFact(fakeFunc("repro/internal/serve", "Other"), &miss) {
		t.Fatal("fact leaked to an unrelated object")
	}
}

func TestExportUndeclaredFactFails(t *testing.T) {
	a := &Analyzer{Name: "test", FactTypes: []Fact{(*testFact)(nil)}}
	fs := newFactSet(a)
	if err := fs.export("test", fakeFunc("p", "F"), &otherFact{}); err == nil {
		t.Fatal("exporting an undeclared fact type must fail")
	}
}

func TestRunnerFactKeysSorted(t *testing.T) {
	a := &Analyzer{Name: "test", FactTypes: []Fact{(*testFact)(nil)}}
	r := NewRunner()
	fs := newFactSet(a)
	r.sets["test"] = fs
	for _, name := range []string{"Zeta", "Alpha", "Mid"} {
		if err := fs.export("test", fakeFunc("p", name), &testFact{}); err != nil {
			t.Fatal(err)
		}
	}
	keys := r.FactKeys("test")
	want := []string{"p.Alpha", "p.Mid", "p.Zeta"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}
