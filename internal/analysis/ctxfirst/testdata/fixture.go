// Fixture for the ctxfirst analyzer: buried context parameters are
// flagged; context-first and context-free signatures are clean.
package fixture

import "context"

func flagged(name string, ctx context.Context) { // want "first parameter"
	_ = name
	_ = ctx
}

type server struct{}

func (s *server) flaggedMethod(id int, ctx context.Context) { // want "first parameter"
	_ = id
	_ = ctx
}

var flaggedLit = func(n int, ctx context.Context) { // want "first parameter"
	_ = n
	_ = ctx
}

func clean(ctx context.Context, name string) {
	_ = ctx
	_ = name
}

func noContext(a, b int) int { return a + b }
