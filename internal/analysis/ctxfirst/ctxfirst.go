// Package ctxfirst enforces the Go convention that context.Context is
// a function's first parameter. The roadmap's concurrent service work
// threads cancellation through the estimator stack; a buried context
// parameter is how deadlines get dropped.
package ctxfirst

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "flag functions whose context.Context parameter is not first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft = fn.Type
			case *ast.FuncLit:
				ft = fn.Type
			default:
				return true
			}
			check(pass, ft)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if analysis.IsNamedType(pass.TypesInfo.TypeOf(field.Type), "context", "Context") && pos > 0 {
			pass.Reportf(field.Type.Pos(),
				"context.Context should be the first parameter of a function")
		}
		pos += width
	}
}
