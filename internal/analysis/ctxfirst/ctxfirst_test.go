package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxfirst"
)

func TestCtxfirst(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "testdata")
}
