// Package lockhold extends locksafe with intra-function dataflow: it
// flags blocking operations executed while a sync mutex is held — the
// deadlock class the scatter-gather and circuit-breaker paths are most
// exposed to. A channel send under a lock that the receiver needs to
// acquire is a deadlock; a Clock.Sleep under a lock turns one slow
// shard into a convoy.
//
// Blocking operations: channel send/receive (outside a select with a
// default case), time.Sleep and Clock.Sleep-style method sleeps,
// WaitGroup.Wait, net and net/http calls, and acquiring a second sync
// lock (lock-ordering hazard). Cond.Wait is exempt — it releases its
// mutex by design.
//
// Tracking is structural and in source order, like locksafe: a
// mu.Lock() marks mu held until a mu.Unlock() statement appears;
// `defer mu.Unlock()` keeps it held to function end (correctly — any
// blocking call after it runs under the lock). Function literals are
// not entered: their execution time is unknown. Intentional holds
// (e.g. a probe that must serialize) use //spatialvet:ignore with a
// reason.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockhold pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flag blocking operations (channel ops, sleeps, net calls, nested locks) while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			w := &walker{pass: pass, held: map[string]bool{}}
			w.stmts(fd.Body.List)
			return true
		})
	}
	return nil
}

// walker carries the set of textually-held lock expressions through a
// function body in source order.
type walker struct {
	pass *analysis.Pass
	held map[string]bool
}

func (w *walker) holding() string {
	// Deterministic pick for the message: the lexicographically first.
	best := ""
	for k := range w.held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		w.stmt(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.stmt(st.Body)
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		// Ranging over a channel blocks per iteration.
		if w.anyHeld() {
			if t := w.pass.TypeOf(st.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(st.Pos(),
						"range over a channel while %s is held; blocking receive under a lock risks deadlock",
						w.holding())
				}
			}
		}
		w.expr(st.X)
		w.stmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		// A select with a default case never blocks; without one, its
		// communication clauses block like bare channel ops.
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && w.anyHeld() {
			w.pass.Reportf(st.Pos(),
				"select without default while %s is held; blocking communication under a lock risks deadlock",
				w.holding())
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		if w.anyHeld() {
			w.pass.Reportf(st.Pos(),
				"channel send while %s is held; blocking send under a lock risks deadlock",
				w.holding())
		}
		w.expr(st.Value)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held to function end — by
		// definition everything after runs under the lock, which is
		// the convention; blocking ops after it still get flagged.
		// Other deferred calls run at return time; skip.
	case *ast.GoStmt:
		// The spawned goroutine does not block this one.
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	}
}

// expr scans one expression in evaluation context: lock transitions,
// blocking calls, channel receives. Function literals are not entered.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && w.anyHeld() {
				w.pass.Reportf(x.Pos(),
					"channel receive while %s is held; blocking receive under a lock risks deadlock",
					w.holding())
			}
		case *ast.CallExpr:
			w.call(x)
		}
		return true
	})
}

// call classifies one call: lock transition, blocking operation, or
// neither.
func (w *walker) call(call *ast.CallExpr) {
	fn := w.pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)

	if fn.Pkg().Path() == "sync" && sel != nil {
		root := types.ExprString(sel.X)
		switch fn.Name() {
		case "Lock", "RLock":
			if w.anyHeld() && !w.held[root] {
				w.pass.Reportf(call.Pos(),
					"acquires %s.%s while %s is already held; nested sync acquisition risks lock-order deadlock",
					root, fn.Name(), w.holding())
			}
			w.held[root] = true
		case "Unlock", "RUnlock":
			delete(w.held, root)
		case "Wait":
			// Cond.Wait releases its lock by design; WaitGroup.Wait
			// blocks for other goroutines.
			if w.anyHeld() && recvName(fn) == "WaitGroup" {
				w.pass.Reportf(call.Pos(),
					"WaitGroup.Wait while %s is held; waiting on other goroutines under a lock risks deadlock",
					w.holding())
			}
		}
		return
	}

	if !w.anyHeld() {
		return
	}
	switch {
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		w.pass.Reportf(call.Pos(),
			"time.Sleep while %s is held; sleeping under a lock convoys every waiter", w.holding())
	case fn.Name() == "Sleep" && sel != nil && isMethod(fn):
		w.pass.Reportf(call.Pos(),
			"%s.Sleep while %s is held; sleeping under a lock convoys every waiter",
			types.ExprString(sel.X), w.holding())
	case isNetBlocking(fn):
		w.pass.Reportf(call.Pos(),
			"%s.%s while %s is held; network I/O under a lock stalls every waiter on the peer",
			fn.Pkg().Name(), fn.Name(), w.holding())
	}
}

func (w *walker) anyHeld() bool { return len(w.held) > 0 }

// netBlockingMethods are the net / net/http methods that wait on the
// peer; Close and friends are teardown, not I/O.
var netBlockingMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
	"Read": true, "Write": true, "RoundTrip": true, "Accept": true,
}

// isNetBlocking reports whether fn is a network call that can block on
// the wire: any package-level net / net/http function (Dial, Listen,
// Get, …) or a known-blocking method of those packages.
func isNetBlocking(fn *types.Func) bool {
	p := fn.Pkg().Path()
	if p != "net" && p != "net/http" {
		return false
	}
	if !isMethod(fn) {
		return true
	}
	return netBlockingMethods[fn.Name()]
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// recvName returns the receiver's named-type name, "" for functions.
func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
