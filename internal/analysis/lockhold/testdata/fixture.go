// Fixture for the lockhold analyzer: blocking operations while a
// mutex is held.
package fixture

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	other sync.Mutex
	wg    sync.WaitGroup
	cond  *sync.Cond
	ch    chan int
	n     int
}

func (s *server) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while s.mu is held"
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *server) dialUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.Dial("tcp", "localhost:1") // want "net.Dial while s.mu is held"
	if err == nil {
		_ = conn.Close()
	}
}

func (s *server) nestedLock() {
	s.mu.Lock()
	s.other.Lock() // want "acquires s.other.Lock while s.mu is already held"
	s.n++
	s.other.Unlock()
	s.mu.Unlock()
}

func (s *server) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while s.mu is held"
	case v := <-s.ch:
		s.n = v
	}
}

// Non-blocking select under a lock is fine.
func (s *server) trySendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// Blocking between critical sections is fine.
func (s *server) sequential() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Cond.Wait releases its mutex by design.
func (s *server) condWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait()
	}
}

// Reacquiring the same expression is a locksafe problem, not a
// lockhold one (no second lock object involved).
func (s *server) reLockSameExpr() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

// A goroutine launched under the lock does not block the holder.
func (s *server) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

func (s *server) intentionalHold() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//spatialvet:ignore lockhold fixture exercises the ignore directive
	time.Sleep(time.Millisecond)
}
