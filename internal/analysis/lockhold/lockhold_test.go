package lockhold_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "testdata")
}
