package nilrecv_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nilrecv"
)

func TestNilRecv(t *testing.T) {
	analysistest.Run(t, nilrecv.Analyzer, "testdata")
}
