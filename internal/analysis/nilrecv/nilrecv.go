// Package nilrecv enforces the telemetry nil-receiver contract:
// every exported pointer-receiver method on a type documented nil-safe
// must begin with a nil-receiver guard before any receiver field
// access. Instrumented code calls metric methods unconditionally —
// `counter.Inc()` on a nil *Counter must be a no-op, never a panic —
// so a missing guard turns "telemetry disabled" into a crash in the
// serving path.
//
// A type is under the contract when:
//   - its package path ends in internal/telemetry (the whole package
//     declares the no-op-on-nil contract in its doc), or
//   - its declaration carries a `//spatialvet:nilsafe` directive, or
//   - its doc comment contains "nil-safe" or "no-op on a nil receiver".
//
// Methods that never touch receiver state (pure delegations like
// `func (c *Counter) Inc() { c.Add(1) }`) need no guard: calling a
// method on a nil pointer is legal; dereferencing a field is not.
// Contract types additionally export a NilSafe fact so future
// analyzers can reason about the contract across packages.
package nilrecv

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// NilSafe marks a type whose pointer-receiver methods promise no-op
// behavior on a nil receiver.
type NilSafe struct{}

// AFact marks NilSafe as a fact type.
func (*NilSafe) AFact() {}

// Analyzer is the nilrecv pass.
var Analyzer = &analysis.Analyzer{
	Name:      "nilrecv",
	Doc:       "flag exported methods on nil-safe types lacking a nil-receiver guard before field access",
	FactTypes: []analysis.Fact{(*NilSafe)(nil)},
	Run:       run,
}

// contractPackage reports whether every exported type of the package
// is under the nil-safe contract.
func contractPackage(path string) bool {
	return path == "internal/telemetry" || strings.HasSuffix(path, "/internal/telemetry")
}

// docMarkers are the doc-comment phrasings that opt a type into the
// contract. Deliberately positive statements only — "is not nil-safe"
// must not match — so the wording asserts the behavior, not the topic.
var docMarkers = []string{
	"no-op on a nil receiver",
	"no-ops on a nil receiver",
	"no-op on nil receivers",
	"nil receiver is a no-op",
}

// nilSafeColonRe matches "X is nil-safe:" style contract declarations.
var nilSafeColonRe = regexp.MustCompile(`(?i)\bis nil-safe\b|\bnil \*?\w+ is a no-op\b`)

func run(pass *analysis.Pass) error {
	safe := make(map[*types.TypeName]bool)

	// Phase 1: find contract types from package scope, directives and
	// doc comments.
	wholePkg := contractPackage(pass.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, _ := pass.ObjectOf(ts.Name).(*types.TypeName)
				if obj == nil {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if (wholePkg && obj.Exported()) || markedNilSafe(doc) {
					safe[obj] = true
					pass.ExportObjectFact(obj, &NilSafe{})
				}
			}
		}
	}
	if len(safe) == 0 {
		return nil
	}

	// Phase 2: check every exported pointer-receiver method on a
	// contract type.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, tn := receiver(pass, fd)
			if tn == nil || !safe[tn] || recvName == "" || recvName == "_" {
				continue
			}
			checkMethod(pass, fd, recvName, tn)
		}
	}
	return nil
}

// markedNilSafe reports whether the doc comment opts the type into the
// contract.
func markedNilSafe(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "spatialvet:nilsafe") {
			return true
		}
	}
	lower := strings.ToLower(doc.Text())
	for _, m := range docMarkers {
		if strings.Contains(lower, m) {
			return true
		}
	}
	return nilSafeColonRe.MatchString(doc.Text())
}

// receiver resolves the method's receiver variable name and the named
// type it points to; tn is nil for value receivers.
func receiver(pass *analysis.Pass, fd *ast.FuncDecl) (string, *types.TypeName) {
	if len(fd.Recv.List) != 1 {
		return "", nil
	}
	field := fd.Recv.List[0]
	ptr, ok := pass.TypeOf(field.Type).(*types.Pointer)
	if !ok {
		return "", nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", nil
	}
	name := ""
	if len(field.Names) == 1 {
		name = field.Names[0].Name
	}
	return name, named.Obj()
}

// checkMethod verifies the first receiver field access is preceded by
// a `recv == nil` comparison.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recvName string, tn *types.TypeName) {
	guardPos := token.Pos(-1)
	var firstField token.Pos = -1
	var firstFieldName string

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op == token.EQL || e.Op == token.NEQ {
				if isRecvIdent(pass, e.X, recvName) && isNil(pass, e.Y) ||
					isRecvIdent(pass, e.Y, recvName) && isNil(pass, e.X) {
					if guardPos < 0 || e.Pos() < guardPos {
						guardPos = e.Pos()
					}
				}
			}
		case *ast.SelectorExpr:
			if !isRecvIdent(pass, e.X, recvName) {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if firstField < 0 || e.Pos() < firstField {
					firstField = e.Pos()
					firstFieldName = e.Sel.Name
				}
			}
		}
		return true
	})

	if firstField < 0 {
		return // no receiver state touched; nil is trivially safe
	}
	if guardPos >= 0 && guardPos < firstField {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported method (*%s).%s on a nil-safe type accesses %s.%s without a leading nil-receiver guard",
		tn.Name(), fd.Name.Name, recvName, firstFieldName)
}

// isRecvIdent reports whether e is the receiver identifier.
func isRecvIdent(pass *analysis.Pass, e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	return ok && v != nil
}

// isNil reports whether e is the untyped nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.ObjectOf(id).(*types.Nil)
	return isNilObj
}
