// Fixture for the nilrecv analyzer: nil-safe contract types must
// guard their exported pointer-receiver methods before touching
// fields.
package fixture

import "sync/atomic"

// Counter is nil-safe: all methods are no-ops on a nil receiver.
type Counter struct {
	n atomic.Uint64
}

// Add guards first: fine.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Inc delegates to a guarded method without touching fields: fine.
func (c *Counter) Inc() { c.Add(1) }

// Value forgets the guard.
func (c *Counter) Value() uint64 { // want "accesses c.n without a leading nil-receiver guard"
	return c.n.Load()
}

//spatialvet:nilsafe
type Gauge struct {
	v atomic.Int64
}

// Set guards with an inverted comparison: fine.
func (g *Gauge) Set(v int64) {
	if nil == g {
		return
	}
	g.v.Store(v)
}

// Bump reads the field before the guard.
func (g *Gauge) Bump() { // want "accesses g.v without a leading nil-receiver guard"
	g.v.Add(1)
	if g == nil {
		return
	}
}

// unexported methods are outside the contract (callers inside the
// package know what they hold).
func (g *Gauge) reset() { g.v.Store(0) }

// Plain is not documented nil-safe; no guards required.
type Plain struct {
	x int
}

func (p *Plain) X() int { return p.x }

// Sample is nil-safe but uses a value receiver for a read-only view;
// value receivers are out of scope (the nil pointer is dereferenced at
// the call site, not in the method).
type Sample struct {
	v int
}

func (s Sample) V() int { return s.v }

// Sink is nil-safe; Drop is ignored with a reason.
type Sink struct {
	buf []byte
}

//spatialvet:ignore nilrecv fixture exercises the ignore directive
func (s *Sink) Drop(b []byte) {
	s.buf = append(s.buf, b...)
}
