// Fixture for the locksafe analyzer: by-value lock copies and
// unreleased Locks are flagged; defer/inline release patterns are
// clean.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "parameter passes sync.Mutex by value"
	return g.n
}

func (g guarded) byValueReceiver() int { // want "receiver passes sync.Mutex by value"
	return g.n
}

func byValueResult() (m sync.RWMutex) { // want "result passes sync.RWMutex by value"
	return
}

func wgByValue(wg sync.WaitGroup) { // want "parameter passes sync.WaitGroup by value"
	wg.Wait()
}

func leak(g *guarded) {
	g.mu.Lock() // want "without a matching Unlock"
	g.n++
}

func leakRead(mu *sync.RWMutex, g *guarded) int {
	mu.RLock() // want "without a matching RUnlock"
	return g.n
}

func cleanDefer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func cleanInline(g *guarded, mu *sync.RWMutex) int {
	mu.RLock()
	n := g.n
	mu.RUnlock()

	g.mu.Lock()
	g.n = n + 1
	g.mu.Unlock()
	return n
}

func cleanClosure(g *guarded) {
	g.mu.Lock()
	defer func() { g.mu.Unlock() }()
	g.n++
}

func cleanPointers(g *guarded, mu *sync.Mutex, wg *sync.WaitGroup) {
	wg.Wait()
	_ = g
	_ = mu
}
