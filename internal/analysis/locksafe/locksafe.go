// Package locksafe flags the two mutex mistakes that matter most for
// the concurrent packages (catalog, feedback, grid): sync primitives
// copied by value (a copied mutex guards nothing), and Lock/RLock
// calls in functions that contain no matching Unlock/RUnlock on the
// same lock expression (a structural leak that deadlocks under load).
//
// The pairing check is intra-procedural and textual: a function that
// calls mu.Lock() must somewhere — deferred or inline, on any path —
// call mu.Unlock(). Lock handoff across functions is not used in this
// codebase and is reported so it stays that way.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag sync primitives copied by value and Lock calls without a matching Unlock",
	Run:  run,
}

// lockTypes are the sync types that must never be copied once used.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkCopies(pass, fn.Recv, "receiver")
				if fn.Type != nil {
					checkCopies(pass, fn.Type.Params, "parameter")
					checkCopies(pass, fn.Type.Results, "result")
				}
				if fn.Body != nil {
					checkBalance(pass, fn)
				}
			case *ast.FuncLit:
				checkCopies(pass, fn.Type.Params, "parameter")
				checkCopies(pass, fn.Type.Results, "result")
			}
			return true
		})
	}
	return nil
}

// checkCopies reports fields whose (non-pointer) type contains a sync
// primitive.
func checkCopies(pass *analysis.Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if name := lockIn(t, 0); name != "" {
			pass.Reportf(field.Type.Pos(),
				"%s passes %s by value; locks must be shared by pointer", kind, name)
		}
	}
}

// lockIn returns the description of a sync primitive reachable by
// value inside t, or "".
func lockIn(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockIn(u.Field(i).Type(), depth+1); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), depth+1)
	}
	return ""
}

// checkBalance verifies every Lock/RLock in fn has a matching
// Unlock/RUnlock on the same expression somewhere in the function
// (closures included: a deferred closure that unlocks counts).
func checkBalance(pass *analysis.Pass, fn *ast.FuncDecl) {
	type acquire struct {
		pos  token.Pos
		name string
	}
	locks := make(map[string]acquire)
	released := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || method.Pkg() == nil || method.Pkg().Path() != "sync" {
			return true
		}
		root := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock":
			key := root + ":w"
			if _, seen := locks[key]; !seen {
				locks[key] = acquire{pos: sel.Pos(), name: root + ".Lock"}
			}
		case "RLock":
			key := root + ":r"
			if _, seen := locks[key]; !seen {
				locks[key] = acquire{pos: sel.Pos(), name: root + ".RLock"}
			}
		case "Unlock":
			released[root+":w"] = true
		case "RUnlock":
			released[root+":r"] = true
		}
		return true
	})
	for key, acq := range locks {
		if !released[key] {
			pass.Reportf(acq.pos,
				"%s() without a matching %s in the same function; use defer or release on every path",
				acq.name, unlockName(key))
		}
	}
}

func unlockName(key string) string {
	if key[len(key)-1] == 'r' {
		return "RUnlock"
	}
	return "Unlock"
}
