// BenchmarkResilienceSuite measures what the resilience layer buys:
// it replays the hedged-slow-shard fault scenario with hedging on and
// off and records the virtual-time p50/p99 request latencies to
// BENCH_resilience.json — the same regression-diff contract as
// BENCH_estimate.json and BENCH_serve.json. The p99 gap between the
// two rows IS the hedge: the slow shard's 120ms first attempt versus
// the ~hedge-delay dodge.
//
// The scenario runs on a simulated clock, so a cheap CI smoke run is:
//
//	go test -run '^$' -bench BenchmarkResilienceSuite -benchtime=1x .
package spatialest_test

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"testing"

	"repro/internal/faultsim"
)

// resilienceBenchRow is one line of BENCH_resilience.json.
type resilienceBenchRow struct {
	Scenario  string  `json:"scenario"`
	Hedging   bool    `json:"hedging"`
	P50Ms     float64 `json:"p50_ms"` // virtual-time median request latency
	P99Ms     float64 `json:"p99_ms"` // virtual-time tail request latency
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedge_wins"`
	NsPerOp   float64 `json:"ns_per_op"` // real time per full scenario replay
}

var resilienceBenchJSON struct {
	mu   sync.Mutex
	rows map[string]resilienceBenchRow
}

// recordResilienceBenchRow stores the row and rewrites
// BENCH_resilience.json with everything measured so far, sorted for
// deterministic diffs.
func recordResilienceBenchRow(b *testing.B, row resilienceBenchRow) {
	b.Helper()
	resilienceBenchJSON.mu.Lock()
	defer resilienceBenchJSON.mu.Unlock()
	if resilienceBenchJSON.rows == nil {
		resilienceBenchJSON.rows = make(map[string]resilienceBenchRow)
	}
	key := row.Scenario + "/hedged"
	if !row.Hedging {
		key = row.Scenario + "/unhedged"
	}
	resilienceBenchJSON.rows[key] = row
	keys := make([]string, 0, len(resilienceBenchJSON.rows))
	for k := range resilienceBenchJSON.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]resilienceBenchRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, resilienceBenchJSON.rows[k])
	}
	f, err := os.Create("BENCH_resilience.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		_ = f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkResilienceSuite(b *testing.B) {
	base, ok := faultsim.Lookup("hedged-slow-shard")
	if !ok {
		b.Fatal("hedged-slow-shard scenario missing from the faultsim suite")
	}
	variants := []struct {
		name    string
		hedging bool
	}{
		{"hedged", true},
		{"unhedged", false},
	}
	for _, v := range variants {
		sc := base
		sc.Resilience.Hedge.Disable = !v.hedging
		b.Run(v.name, func(b *testing.B) {
			var last faultsim.Report
			for i := 0; i < b.N; i++ {
				rep, err := faultsim.Run(sc, 1)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Passed {
					b.Fatalf("invariants violated: %v", rep.Violations)
				}
				last = rep
			}
			// The interesting numbers are virtual-time latencies, not
			// wall time: surface them in the bench output and the JSON.
			b.ReportMetric(last.P50Millis, "p50-virt-ms")
			b.ReportMetric(last.P99Millis, "p99-virt-ms")
			recordResilienceBenchRow(b, resilienceBenchRow{
				Scenario:  base.Name,
				Hedging:   v.hedging,
				P50Ms:     last.P50Millis,
				P99Ms:     last.P99Millis,
				Hedges:    last.Hedges,
				HedgeWins: last.HedgeWins,
				NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			})
		})
	}
}
