// BenchmarkServeSuite measures per-query latency of the serving stack
// — the monolithic histogram, scatter-gather over K shards, and the
// HTTP service's cache hit and miss paths — and writes the results to
// BENCH_serve.json, the same regression-diff contract as
// BENCH_estimate.json.
//
// The file is rewritten after every sub-benchmark completes, so a
// cheap CI smoke run is just:
//
//	go test -run '^$' -bench BenchmarkServeSuite -benchtime=1x .
package spatialest_test

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	spatialest "repro"
	"repro/internal/catalog"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/spatialdb"
)

// serveBenchRow is one line of BENCH_serve.json.
type serveBenchRow struct {
	Path    string  `json:"path"`
	Shards  int     `json:"shards"`
	NsPerOp float64 `json:"ns_per_op"`
	N       int     `json:"iterations"`
}

var serveBenchJSON struct {
	mu   sync.Mutex
	rows map[string]serveBenchRow
}

// recordServeBenchRow stores the row and rewrites BENCH_serve.json
// with everything measured so far, sorted for deterministic diffs.
func recordServeBenchRow(b *testing.B, row serveBenchRow) {
	b.Helper()
	serveBenchJSON.mu.Lock()
	defer serveBenchJSON.mu.Unlock()
	if serveBenchJSON.rows == nil {
		serveBenchJSON.rows = make(map[string]serveBenchRow)
	}
	serveBenchJSON.rows[row.Path+"/"+strconv.Itoa(row.Shards)] = row
	keys := make([]string, 0, len(serveBenchJSON.rows))
	for k := range serveBenchJSON.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]serveBenchRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, serveBenchJSON.rows[k])
	}
	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		b.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		_ = f.Close()
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServeSuite(b *testing.B) {
	d := spatialest.NJRoad(50000)
	queries, err := spatialest.GenerateQueries(d, spatialest.QueryConfig{
		Count: 1024, QSize: 0.10, Seed: 11, Clamp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	record := func(b *testing.B, path string, shards int) {
		b.Helper()
		recordServeBenchRow(b, serveBenchRow{
			Path:    path,
			Shards:  shards,
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			N:       b.N,
		})
	}

	// Monolithic: one Min-Skew histogram walked in-process, the
	// baseline every sharded configuration is compared against.
	b.Run("Direct/Monolithic", func(b *testing.B) {
		est, err := spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: 100, Regions: 10000})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.Estimate(queries[i%len(queries)])
		}
		b.StopTimer()
		record(b, "Direct/Monolithic", 1)
	})

	// Scatter-gather over K shards; K=1 isolates the dispatch overhead.
	for _, k := range []int{1, 4, 8} {
		b.Run("Direct/Sharded/K="+strconv.Itoa(k), func(b *testing.B) {
			sc := shard.New(shard.Config{Shards: k, Buckets: 100, Regions: 10000})
			if err := sc.AnalyzeContext(ctx, d); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sc.EstimateContext(ctx, queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			record(b, "Direct/Sharded", k)
		})
	}

	// The service paths run the full admission + singleflight + cache
	// stack over a sharded engine backend.
	newServer := func(b *testing.B, cfg serve.Config) *serve.Server {
		b.Helper()
		db := spatialdb.New(catalog.Config{Buckets: 100, Regions: 10000})
		if err := db.Create("roads", d); err != nil {
			b.Fatal(err)
		}
		db.SetShardPolicy(shard.Config{Shards: 4, Buckets: 100, Regions: 10000})
		if err := db.Analyze("roads"); err != nil {
			b.Fatal(err)
		}
		return serve.New(db, cfg)
	}

	b.Run("Server/CacheMiss", func(b *testing.B) {
		srv := newServer(b, serve.Config{CacheSize: -1}) // cache disabled: every call is the miss path
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Estimate(ctx, "roads", queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		record(b, "Server/CacheMiss", 4)
	})

	b.Run("Server/CacheHit", func(b *testing.B) {
		srv := newServer(b, serve.Config{})
		q := queries[0]
		if _, err := srv.Estimate(ctx, "roads", q); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Estimate(ctx, "roads", q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		record(b, "Server/CacheHit", 4)
	})
}
