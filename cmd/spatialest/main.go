// Command spatialest builds a selectivity estimator over a dataset and
// answers range queries with it, optionally alongside the exact count.
//
// Usage:
//
//	spatialest -data njroad.bin -technique minskew -buckets 100 \
//	    -query "2000 2000 4000 4000"
//
// Without -query, queries are read one per line from standard input as
// "minx miny maxx maxy"; a line with two fields is a point query.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	spatialest "repro"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "dataset file (required; or use -gen)")
		gen         = flag.String("gen", "", "generate a dataset instead of loading: charminar or njroad")
		n           = flag.Int("n", 40000, "size for -gen")
		technique   = flag.String("technique", "minskew", "estimator: minskew, equiarea, equicount, rtree, sample, fractal, uniform")
		buckets     = flag.Int("buckets", 100, "bucket budget")
		regions     = flag.Int("regions", 10000, "Min-Skew grid regions")
		refinements = flag.Int("refinements", 0, "Min-Skew progressive refinements")
		query       = flag.String("query", "", "single query: \"minx miny maxx maxy\" or \"x y\"")
		withExact   = flag.Bool("exact", false, "also compute the exact count")
		seed        = flag.Int64("seed", 1, "seed for sampling")
		eval        = flag.Int("eval", 0, "evaluate on a generated workload of this many queries and report error statistics")
		evalQSize   = flag.Float64("evalqsize", 0.10, "query size fraction for -eval")
		saveTrace   = flag.String("savetrace", "", "with -eval: also persist the workload and ground truth to this file")
		replayTrace = flag.String("replay", "", "evaluate against a previously saved trace instead of -eval")
	)
	flag.Parse()

	d, err := loadData(*dataPath, *gen, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	est, err := build(d, *technique, *buckets, *regions, *refinements, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# %s over %d rectangles: built in %v, %.0f bucket-equivalents\n",
		est.Name(), d.N(), time.Since(start).Round(time.Millisecond), est.SpaceBuckets())

	if *replayTrace != "" {
		tr, err := spatialest.LoadTrace(*replayTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
			os.Exit(1)
		}
		sum, err := tr.Evaluate(est)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:  %s (%d queries)\n", *replayTrace, tr.Len())
		fmt.Printf("error:  %v\n", sum)
		return
	}
	if *eval > 0 {
		if err := evaluate(d, est, *eval, *evalQSize, *seed, *saveTrace); err != nil {
			fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var oracle spatialest.Oracle
	if *withExact {
		oracle = spatialest.NewOracle(d)
	}

	answer := func(q spatialest.Rect) {
		e := est.Estimate(q)
		if oracle != nil {
			exact := oracle.Count(q)
			fmt.Printf("%v estimate=%.1f exact=%d selectivity=%.5f\n", q, e, exact, e/float64(d.N()))
			return
		}
		fmt.Printf("%v estimate=%.1f selectivity=%.5f\n", q, e, e/float64(d.N()))
	}

	if *query != "" {
		q, err := parseQuery(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
			os.Exit(1)
		}
		answer(q)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := parseQuery(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
			continue
		}
		answer(q)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "spatialest: %v\n", err)
		os.Exit(1)
	}
}

// evaluate scores the estimator on a generated workload against the
// exact oracle and prints the paper's metric plus a fuller summary.
func evaluate(d *spatialest.Dataset, est spatialest.Estimator, count int, qsize float64, seed int64, savePath string) error {
	queries, err := spatialest.GenerateQueries(d, spatialest.QueryConfig{
		Count: count, QSize: qsize, Seed: seed, Clamp: true,
	})
	if err != nil {
		return err
	}
	tr := spatialest.CaptureTrace(spatialest.NewOracle(d), queries)
	start := time.Now()
	ests := make([]float64, len(queries))
	for i, q := range queries {
		ests[i] = est.Estimate(q)
	}
	estTime := time.Since(start)
	sum, err := spatialest.SummarizeErrors(tr.Actual, ests)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d queries at QSize %.0f%%\n", count, qsize*100)
	fmt.Printf("error:    %v\n", sum)
	fmt.Printf("latency:  %v per estimate\n", (estTime / time.Duration(count)).Round(time.Nanosecond))
	if savePath != "" {
		if err := spatialest.SaveTrace(savePath, tr); err != nil {
			return err
		}
		fmt.Printf("trace:    saved to %s\n", savePath)
	}
	return nil
}

func loadData(path, gen string, n int) (*spatialest.Dataset, error) {
	switch {
	case path != "":
		return spatialest.LoadDataset(path)
	case gen == "charminar":
		return spatialest.Charminar(n, 10000, 100, 1999), nil
	case gen == "njroad":
		return spatialest.NJRoad(n), nil
	default:
		return nil, fmt.Errorf("need -data or -gen charminar|njroad")
	}
}

func build(d *spatialest.Dataset, technique string, buckets, regions, refinements int, seed int64) (spatialest.Estimator, error) {
	switch technique {
	case "minskew":
		return spatialest.NewMinSkew(d, spatialest.MinSkewOptions{
			Buckets: buckets, Regions: regions, Refinements: refinements,
		})
	case "equiarea":
		return spatialest.NewEquiArea(d, buckets)
	case "equicount":
		return spatialest.NewEquiCount(d, buckets)
	case "rtree":
		return spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: buckets})
	case "sample":
		return spatialest.NewSample(d, 4*buckets, seed)
	case "fractal":
		return spatialest.NewFractal(d, 2, 8)
	case "uniform":
		return spatialest.NewUniform(d)
	default:
		return nil, fmt.Errorf("unknown technique %q", technique)
	}
}

func parseQuery(s string) (spatialest.Rect, error) {
	fields := strings.Fields(s)
	vals := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return spatialest.Rect{}, fmt.Errorf("bad query %q: %v", s, err)
		}
		vals[i] = v
	}
	switch len(vals) {
	case 2:
		return spatialest.PointQuery(vals[0], vals[1]), nil
	case 4:
		return spatialest.NewRect(vals[0], vals[1], vals[2], vals[3]), nil
	default:
		return spatialest.Rect{}, fmt.Errorf("query %q needs 2 or 4 numbers", s)
	}
}
