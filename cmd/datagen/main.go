// Command datagen generates the datasets used in the paper's
// experiments and writes them in the library's text or binary format
// (by output extension: ".bin" is binary).
//
// Usage:
//
//	datagen -kind charminar -n 40000 -out charminar.txt
//	datagen -kind njroad -n 414442 -out njroad.bin
//	datagen -kind uniform|clusters|skewed ...
package main

import (
	"flag"
	"fmt"
	"os"

	spatialest "repro"
)

func main() {
	var (
		kind    = flag.String("kind", "charminar", "dataset kind: charminar, njroad, uniform, clusters, skewed")
		n       = flag.Int("n", 40000, "number of rectangles")
		space   = flag.Float64("space", 10000, "side of the square input space")
		size    = flag.Float64("size", 100, "rectangle side (charminar) / max side (others)")
		minSide = flag.Float64("minside", 1, "minimum rectangle side (uniform, clusters)")
		k       = flag.Int("clusters", 8, "cluster count (clusters)")
		theta   = flag.Float64("theta", 1.0, "Zipf skew (skewed)")
		seed    = flag.Int64("seed", 1999, "random seed")
		out     = flag.String("out", "", "output path (required; .bin selects binary format)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var d *spatialest.Dataset
	switch *kind {
	case "charminar":
		d = spatialest.Charminar(*n, *space, *size, *seed)
	case "njroad":
		d = spatialest.NJRoad(*n)
	case "uniform":
		d = spatialest.UniformData(*n, *space, *minSide, *size, *seed)
	case "clusters":
		d = spatialest.Clusters(*n, *k, *space, 0.03, *minSide, *size, *seed)
	case "skewed":
		d = spatialest.Skewed(spatialest.SkewedDataConfig{
			N: *n, Space: *space, PlacementTheta: *theta, SizeTheta: *theta, MaxSide: *size, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := spatialest.SaveDataset(*out, d); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %v\n", *out, d)
}
