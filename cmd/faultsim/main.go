// Command faultsim runs the deterministic fault-injection scenario
// suite against an in-process sharded estimation server and emits a
// JSON report. Every scenario replays a seeded workload trace on a
// simulated clock — no real sleeps — and checks the serving
// invariants (no silent degradation, no cached partials, classified
// errors, no deadlocks, graceful drain, recovery).
//
// Usage:
//
//	faultsim                          # full suite, default seeds
//	faultsim -seeds 1,42,7            # explicit seed list
//	faultsim -scenario chaos -seed 99 # one scenario, one seed
//	faultsim -sequential              # Workers=1: byte-reproducible reports
//	faultsim -o report.json           # write the JSON report to a file
//	faultsim -trace-out spans.ndjson  # dump every run's span trees (NDJSON)
//	faultsim -query-log qlog.ndjson   # dump every run's query log (NDJSON)
//	faultsim -list                    # list scenarios and exit
//
// Exit status is non-zero if any scenario run violates an invariant —
// the reported (scenario, seed) pair reproduces the failure exactly.
//
// The invariant verdicts are schedule-independent, but a multi-worker
// scenario's aggregate counters (sheds under queue contention, hits in
// a TTL'd cache, total virtual elapsed) depend on how the goroutine
// scheduler interleaves workers with the virtual-clock driver.
// -sequential forces every scenario to one worker, making the clock
// advance only at true quiescence — the same (seeds, -sequential)
// invocation then emits a byte-identical report on every run, which is
// what CI's determinism gate diffs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultsim"
)

// suiteReport is the JSON report. It deliberately carries no wall
// time: CI's determinism gate runs the suite twice with the same seeds
// and diffs the reports byte-for-byte, so everything here must be a
// pure function of (scenario, seed). Wall-clock elapsed goes to stderr.
type suiteReport struct {
	Suite  string            `json:"suite"`
	Seeds  []int64           `json:"seeds"`
	Runs   []faultsim.Report `json:"runs"`
	Passed bool              `json:"passed"`
	Failed int               `json:"failed"`
}

func main() {
	var (
		scenario = flag.String("scenario", "", "run a single named scenario (default: whole suite)")
		seed     = flag.Int64("seed", 0, "single seed (with -scenario); 0 uses -seeds")
		seedsCSV = flag.String("seeds", "1,42,7", "comma-separated seed list")
		out      = flag.String("o", "", "write the JSON report to this file (default stdout)")
		list     = flag.Bool("list", false, "list scenarios and exit")
		verbose  = flag.Bool("v", false, "print a progress line per run to stderr")
		seq      = flag.Bool("sequential", false, "force Workers=1 for schedule-free, byte-reproducible reports")
		traceOut = flag.String("trace-out", "", "write every run's retained span trees to this NDJSON file")
		queryLog = flag.String("query-log", "", "write every run's query log to this NDJSON file")
	)
	flag.Parse()

	if *list {
		for _, sc := range faultsim.Suite() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	scenarios := faultsim.Suite()
	if *scenario != "" {
		sc, ok := faultsim.Lookup(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "faultsim: unknown scenario %q (try -list)\n", *scenario)
			os.Exit(2)
		}
		scenarios = []faultsim.Scenario{sc}
	}
	seeds, err := parseSeeds(*seedsCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(2)
	}
	if *seed != 0 {
		seeds = []int64{*seed}
	}
	if *seq {
		for i := range scenarios {
			scenarios[i].Workers = 1
		}
	}

	// The observability sinks collect across every (seed, scenario)
	// run; under -sequential their bytes are a pure function of the
	// invocation, so CI diffs them alongside the report.
	traceW, closeTraces := openSink(*traceOut)
	qlogW, closeQlog := openSink(*queryLog)

	start := time.Now()
	rep := suiteReport{Suite: "faultsim", Seeds: seeds, Passed: true}
	for _, s := range seeds {
		for _, sc := range scenarios {
			r, err := faultsim.RunTraced(sc, s, traceW, qlogW)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultsim: %s seed=%d: %v\n", sc.Name, s, err)
				os.Exit(1)
			}
			rep.Runs = append(rep.Runs, r)
			if !r.Passed {
				rep.Passed = false
				rep.Failed++
				fmt.Fprintf(os.Stderr, "FAIL %s seed=%d (%d violations; rerun: faultsim -scenario %s -seed %d)\n",
					r.Scenario, r.Seed, len(r.Violations), r.Scenario, r.Seed)
				for _, v := range r.Violations {
					fmt.Fprintf(os.Stderr, "  [%s] %s\n", v.Invariant, v.Detail)
				}
			} else if *verbose {
				fmt.Fprintf(os.Stderr, "ok   %s seed=%d (%d requests, %d partials, %d errors, quality %d/%d/%d full/coarse/uniform, p99 %.1fms, sim %dms)\n",
					r.Scenario, r.Seed, r.Requests, r.Partials, r.ErrorsTotal,
					r.QualityFull, r.QualityCoarse, r.QualityUniform, r.P99Millis, r.SimElapsedMillis)
			}
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "faultsim: suite elapsed %s\n",
			time.Since(start).Round(time.Millisecond))
	}
	closeTraces()
	closeQlog()

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: marshal: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(raw)
	}
	if !rep.Passed {
		os.Exit(1)
	}
}

// openSink opens a buffered NDJSON output file, returning a nil
// writer (observability disabled) for the empty path. The returned
// close function flushes and closes; failures are fatal — a truncated
// artifact would silently break the determinism diff.
func openSink(path string) (io.Writer, func()) {
	if path == "" {
		return nil, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultsim: %v\n", err)
		os.Exit(1)
	}
	bw := bufio.NewWriter(f)
	return bw, func() {
		if err := bw.Flush(); err == nil {
			err = f.Close()
			if err == nil {
				return
			}
		}
		fmt.Fprintf(os.Stderr, "faultsim: close %s: flush/close failed\n", path)
		os.Exit(1)
	}
}

func parseSeeds(csv string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", csv)
	}
	return seeds, nil
}
