// Command partview renders a dataset and a technique's partitioning as
// an SVG image, reproducing the paper's illustrations: Figure 1 (the
// Charminar dataset), Figures 2-4 (Equi-Area, Equi-Count and R-Tree
// partitionings) and Figure 7 (the Min-Skew partitioning).
//
// Usage:
//
//	partview -gen charminar -technique minskew -buckets 50 -out fig7.svg
//	partview -data njroad.bin -technique equiarea -out ea.svg
package main

import (
	"flag"
	"fmt"
	"os"

	spatialest "repro"
	"repro/internal/svgplot"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "dataset file")
		gen       = flag.String("gen", "charminar", "generate instead of loading: charminar or njroad")
		n         = flag.Int("n", 40000, "size for -gen")
		technique = flag.String("technique", "minskew", "partitioning: minskew, equiarea, equicount, rtree, none")
		buckets   = flag.Int("buckets", 50, "bucket budget (the paper's figures use 50)")
		regions   = flag.Int("regions", 10000, "Min-Skew grid regions")
		width     = flag.Int("width", 800, "image width in pixels")
		out       = flag.String("out", "", "output SVG path (required unless -all)")
		all       = flag.String("all", "", "directory: render every paper figure (1-4, 7) there and exit")
	)
	flag.Parse()
	if *all != "" {
		if err := renderAll(*all, *width); err != nil {
			fmt.Fprintf(os.Stderr, "partview: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "partview: -out is required")
		os.Exit(2)
	}

	var d *spatialest.Dataset
	var err error
	switch {
	case *dataPath != "":
		d, err = spatialest.LoadDataset(*dataPath)
	case *gen == "charminar":
		d = spatialest.Charminar(*n, 10000, 100, 1999)
	case *gen == "njroad":
		d = spatialest.NJRoad(*n)
	default:
		err = fmt.Errorf("need -data or -gen charminar|njroad")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "partview: %v\n", err)
		os.Exit(1)
	}

	var hist *spatialest.Histogram
	switch *technique {
	case "minskew":
		hist, err = spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: *buckets, Regions: *regions})
	case "equiarea":
		hist, err = spatialest.NewEquiArea(d, *buckets)
	case "equicount":
		hist, err = spatialest.NewEquiCount(d, *buckets)
	case "rtree":
		hist, err = spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: *buckets})
	case "none":
	default:
		err = fmt.Errorf("unknown technique %q", *technique)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "partview: %v\n", err)
		os.Exit(1)
	}

	mbr, _ := d.MBR()
	plot := svgplot.New(mbr, *width).Data(d)
	title := fmt.Sprintf("%d rectangles", d.N())
	if hist != nil {
		boxes := make([]spatialest.Rect, 0, len(hist.Buckets()))
		for _, b := range hist.Buckets() {
			boxes = append(boxes, b.Box)
		}
		plot.Boxes(boxes, "")
		title = fmt.Sprintf("%s, %d buckets over %d rectangles", hist.Name(), len(boxes), d.N())
	}
	plot.Title(title)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "partview: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := plot.Render(f); err != nil {
		fmt.Fprintf(os.Stderr, "partview: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "partview: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s)\n", *out, title)
}

// renderAll reproduces the paper's illustrations in one pass: the
// Charminar dataset (Figure 1) and its 50-bucket Equi-Area,
// Equi-Count, R-Tree and Min-Skew partitionings (Figures 2-4, 7).
func renderAll(dir string, width int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d := spatialest.Charminar(40000, 10000, 100, 1999)
	mbr, _ := d.MBR()

	write := func(name, title string, hist *spatialest.Histogram) error {
		plot := svgplot.New(mbr, width).Data(d)
		if hist != nil {
			boxes := make([]spatialest.Rect, 0, len(hist.Buckets()))
			for _, b := range hist.Buckets() {
				boxes = append(boxes, b.Box)
			}
			plot.Boxes(boxes, "")
		}
		plot.Title(title)
		path := dir + "/" + name
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := plot.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, title)
		return nil
	}

	if err := write("fig1-charminar.svg", "Figure 1: Charminar dataset", nil); err != nil {
		return err
	}
	builds := []struct {
		file, title string
		build       func() (*spatialest.Histogram, error)
	}{
		{"fig2-equiarea.svg", "Figure 2: Equi-Area partitioning (50 buckets)",
			func() (*spatialest.Histogram, error) { return spatialest.NewEquiArea(d, 50) }},
		{"fig3-equicount.svg", "Figure 3: Equi-Count partitioning (50 buckets)",
			func() (*spatialest.Histogram, error) { return spatialest.NewEquiCount(d, 50) }},
		{"fig4-rtree.svg", "Figure 4: R-Tree partitioning (50 buckets)",
			func() (*spatialest.Histogram, error) {
				return spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: 50})
			}},
		{"fig7-minskew.svg", "Figure 7: Min-Skew partitioning (50 buckets)",
			func() (*spatialest.Histogram, error) {
				return spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: 50, Regions: 2500})
			}},
	}
	for _, b := range builds {
		hist, err := b.build()
		if err != nil {
			return fmt.Errorf("%s: %v", b.file, err)
		}
		if err := write(b.file, b.title, hist); err != nil {
			return err
		}
	}
	return nil
}
