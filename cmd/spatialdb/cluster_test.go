package main

import (
	"context"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/geom"
	"repro/internal/reqtrace"
)

func TestParseGenSpecs(t *testing.T) {
	specs, err := parseGenSpecs("roads=charminar:20000, parks=uniform:5000")
	if err != nil {
		t.Fatal(err)
	}
	want := []genSpec{
		{table: "roads", kind: "charminar", rows: 20000},
		{table: "parks", kind: "uniform", rows: 5000},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d: got %+v, want %+v", i, specs[i], want[i])
		}
	}

	for _, bad := range []string{
		"",
		"roads",
		"roads=charminar",
		"=charminar:100",
		"roads=:100",
		"roads=charminar:0",
		"roads=charminar:x",
	} {
		if _, err := parseGenSpecs(bad); err == nil {
			t.Errorf("parseGenSpecs(%q) should fail", bad)
		}
	}
}

// TestBuildCoordinatorEndToEnd wires the coordinator role against two
// real HTTP workers exactly as the flags would, and checks snapshots
// land and estimates come back at full quality.
func TestBuildCoordinatorEndToEnd(t *testing.T) {
	var hosts []string
	var workers []*cluster.Worker
	for i := 0; i < 2; i++ {
		w := cluster.NewWorker(cluster.WorkerConfig{Tracer: reqtrace.New(reqtrace.Config{})})
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, u.Host)
		workers = append(workers, w)
	}

	o := nodeOpts{
		peers:    strings.Join(hosts, ","),
		replicas: 2,
		gen:      "roads=charminar:2000",
		shards:   4,
		buckets:  60,
	}
	coord, reg, err := buildCoordinator(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("no registry")
	}
	if got := coord.Epoch("roads"); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	// Replicas 2 over 2 nodes: every worker holds every shard.
	for i, w := range workers {
		if got := len(w.Status()); got != o.shards {
			t.Errorf("worker %d holds %d snapshots, want %d", i, got, o.shards)
		}
	}
	res, err := coord.EstimateContext(context.Background(), "roads", geom.NewRect(0, 0, 10000, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Errorf("full-space estimate degraded: %+v", res)
	}
	if res.Estimate <= 0 {
		t.Errorf("estimate = %v, want > 0", res.Estimate)
	}
}
