// Command spatialdb is an interactive miniature spatial database: STR
// bulk-loaded R*-tree indexes, Min-Skew statistics with ANALYZE and
// churn tracking, a cost-based planner for EXPLAIN, and spatial join
// estimates — the full stack the library provides, in one REPL.
//
// Usage:
//
//	spatialdb                 # interactive session on stdin
//	spatialdb < script.sdb    # batch mode
//
// Type "help" for the command reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/spatialdb"
)

func main() {
	var (
		buckets = flag.Int("buckets", 100, "statistics buckets per table")
		regions = flag.Int("regions", 10000, "Min-Skew grid regions")
		stats   = flag.String("stats", "", "directory to load/save persisted statistics")
	)
	flag.Parse()

	db := spatialdb.New(catalog.Config{Buckets: *buckets, Regions: *regions})
	if *stats != "" {
		if err := db.LoadStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: loading stats: %v (continuing)\n", err)
		}
	}
	fmt.Println("spatialdb — type 'help' for commands, 'quit' to exit")
	repl := &spatialdb.REPL{DB: db}
	if err := repl.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: %v\n", err)
		os.Exit(1)
	}
	if *stats != "" {
		if err := db.SaveStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: saving stats: %v\n", err)
			os.Exit(1)
		}
	}
}
