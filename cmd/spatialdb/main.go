// Command spatialdb is an interactive miniature spatial database: STR
// bulk-loaded R*-tree indexes, Min-Skew statistics with ANALYZE and
// churn tracking, a cost-based planner for EXPLAIN, and spatial join
// estimates — the full stack the library provides, in one REPL.
//
// Usage:
//
//	spatialdb                 # interactive session on stdin
//	spatialdb < script.sdb    # batch mode
//
// With -metrics-addr, an admin HTTP endpoint serves runtime telemetry:
// /metrics (Prometheus text format), /debug/vars (expvar-style JSON),
// and /debug/pprof/* (Go runtime profiles).
//
// Type "help" for the command reference.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/spatialdb"
	"repro/internal/telemetry"
)

func main() {
	var (
		buckets     = flag.Int("buckets", 100, "statistics buckets per table")
		regions     = flag.Int("regions", 10000, "Min-Skew grid regions")
		stats       = flag.String("stats", "", "directory to load/save persisted statistics")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	db := spatialdb.New(catalog.Config{Buckets: *buckets, Regions: *regions})
	reg := telemetry.NewRegistry()
	db.EnableTelemetry(reg)
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "spatialdb: metrics on http://%s/metrics\n", ln.Addr())
		go serveMetrics(ln, reg)
	}
	if *stats != "" {
		if err := db.LoadStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: loading stats: %v (continuing)\n", err)
		}
	}
	fmt.Println("spatialdb — type 'help' for commands, 'quit' to exit")
	repl := &spatialdb.REPL{DB: db}
	if err := repl.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: %v\n", err)
		os.Exit(1)
	}
	if *stats != "" {
		if err := db.SaveStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: saving stats: %v\n", err)
			os.Exit(1)
		}
	}
}

// serveMetrics runs the admin endpoint on ln until the process exits.
func serveMetrics(ln net.Listener, reg *telemetry.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: /metrics: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: /debug/vars: %v\n", err)
		}
	})
	// The default pprof handlers register on http.DefaultServeMux; wire
	// them explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "spatialdb: metrics server: %v\n", err)
	}
}
