// Command spatialdb is an interactive miniature spatial database: STR
// bulk-loaded R*-tree indexes, Min-Skew statistics with ANALYZE and
// churn tracking, a cost-based planner for EXPLAIN, and spatial join
// estimates — the full stack the library provides, in one REPL.
//
// Usage:
//
//	spatialdb                 # interactive session on stdin
//	spatialdb < script.sdb    # batch mode
//
// With -metrics-addr, an admin HTTP endpoint serves runtime telemetry:
// /metrics (Prometheus text format), /debug/vars (expvar-style JSON),
// and /debug/pprof/* (Go runtime profiles).
//
// With -serve-addr, an estimation service exposes /estimate,
// /estimate/batch (POST many rectangles per request, amortizing
// admission, tracing and cache lookups), /analyze and /healthz (plus
// /healthz/live and /healthz/ready split probes) over HTTP JSON,
// backed by the same engine the REPL drives;
// -shards > 1 additionally builds sharded statistics at each ANALYZE
// so /estimate scatter-gathers them with circuit breakers, retries,
// hedged shard calls and ladder-based graceful degradation
// (tunable via -ladder-rungs, -no-resilience). The service always
// records request-scoped span traces into a ring served on
// /debug/traces (size tunable via -trace-ring), and -query-log
// additionally appends one NDJSON record per request to a file —
// replayable against candidate statistics once ground truth is joined
// (see the REPL's querylog-join command).
//
// With -role worker or -role coordinator, the binary becomes one node
// of the distributed estimation tier instead of a REPL: workers serve
// shard estimates from shipped Min-Skew snapshots, the coordinator
// builds and ships statistics and fronts the cluster with the same
// /estimate API (see cluster.go for the wiring and an example).
//
// SIGINT and SIGTERM shut both HTTP servers down gracefully before the
// process exits; statistics are persisted (with -stats) either way.
//
// Type "help" for the command reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/spatialdb"
	"repro/internal/telemetry"
)

// shutdownGrace bounds how long in-flight HTTP requests may run after
// a termination signal before the listeners are torn down hard.
const shutdownGrace = 5 * time.Second

func main() {
	var (
		buckets     = flag.Int("buckets", 100, "statistics buckets per table")
		regions     = flag.Int("regions", 10000, "Min-Skew grid regions")
		stats       = flag.String("stats", "", "directory to load/save persisted statistics")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		serveAddr   = flag.String("serve-addr", "", "serve the /estimate HTTP JSON API on this address (e.g. localhost:8080)")
		shards      = flag.Int("shards", 0, "build sharded statistics with this many shards at ANALYZE (0 or 1 = monolithic)")
		ladderRungs = flag.Int("ladder-rungs", 0, "coarser Min-Skew fallback summaries per shard for degraded answers (0 = default)")
		noResil     = flag.Bool("no-resilience", false, "disable circuit breakers, retries and hedged shard calls in the sharded tier")
		traceRing   = flag.Int("trace-ring", 256, "request traces retained for /debug/traces (with -serve-addr)")
		queryLog    = flag.String("query-log", "", "append one NDJSON record per /estimate request to this file (with -serve-addr)")
		role        = flag.String("role", "", "cluster node role: 'worker' or 'coordinator' (empty = single-node REPL)")
		clusterAddr = flag.String("cluster-addr", "localhost:7070", "worker: listen address for the cluster snapshot/estimate protocol")
		peers       = flag.String("peers", "", "coordinator: comma-separated worker host:port list")
		replicas    = flag.Int("replicas", 2, "coordinator: worker replicas holding each shard snapshot")
		clusterGen  = flag.String("cluster-gen", "roads=charminar:20000", "coordinator: tables to generate and analyze, as table=kind:rows[,...] with kind charminar|njroad|uniform")
		stateDir    = flag.String("state-dir", "", "worker: persist installed snapshots here and reload them on boot")
		coordAddr   = flag.String("coordinator", "", "worker: coordinator cluster address (host:port) to pull missing snapshots from")
		resyncIvl   = flag.Duration("resync-interval", 5*time.Second, "worker: pull-resync cadence; coordinator: anti-entropy reconcile cadence (0 disables)")
	)
	flag.Parse()

	// ctx ends on SIGINT/SIGTERM; both HTTP servers drain against a
	// fresh deadline derived afterwards (ctx itself is already done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *role != "" {
		opts := nodeOpts{
			clusterAddr: *clusterAddr,
			peers:       *peers,
			replicas:    *replicas,
			gen:         *clusterGen,
			metricsAddr: *metricsAddr,
			serveAddr:   *serveAddr,
			shards:      *shards,
			buckets:     *buckets,
			regions:     *regions,
			ladderRungs: *ladderRungs,
			noResil:     *noResil,
			traceRing:   *traceRing,
			queryLog:    *queryLog,
			stateDir:    *stateDir,
			coordAddr:   *coordAddr,
			resyncIvl:   *resyncIvl,
		}
		exit := 0
		switch *role {
		case "worker":
			exit = runWorker(ctx, opts)
		case "coordinator":
			exit = runCoordinator(ctx, opts)
		default:
			fmt.Fprintf(os.Stderr, "spatialdb: unknown -role %q (want worker or coordinator)\n", *role)
			exit = 2
		}
		stop()
		os.Exit(exit)
	}

	db := spatialdb.New(catalog.Config{Buckets: *buckets, Regions: *regions})
	reg := telemetry.NewRegistry()
	db.EnableTelemetry(reg)
	if *shards > 1 {
		db.SetShardPolicy(shard.Config{
			Shards:      *shards,
			LadderRungs: *ladderRungs,
			Resilience:  resilience.Config{Disable: *noResil},
		})
	}

	metricsSrv := startMetricsServer(reg, *metricsAddr)

	var estSrv *serve.Server
	var qlog *reqtrace.QueryLog
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: serve listener: %v\n", err)
			os.Exit(1)
		}
		if *queryLog != "" {
			qlog, err = reqtrace.OpenQueryLog(*queryLog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spatialdb: query log: %v\n", err)
				os.Exit(1)
			}
		}
		tracer := reqtrace.New(reqtrace.Config{Ring: *traceRing, QueryLog: qlog})
		tracer.EnableTelemetry(reg)
		fmt.Fprintf(os.Stderr, "spatialdb: estimation API on http://%s/estimate\n", ln.Addr())
		estSrv = serve.New(db, serve.Config{Tracer: tracer})
		estSrv.EnableTelemetry(reg)
		go func() {
			if err := estSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "spatialdb: estimation server: %v\n", err)
			}
		}()
	}

	if *stats != "" {
		if err := db.LoadStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: loading stats: %v (continuing)\n", err)
		}
	}

	// The REPL owns stdin; a termination signal must not wait for the
	// next line of input, so it runs in its own goroutine and the main
	// goroutine selects between "input done" and "signalled".
	fmt.Println("spatialdb — type 'help' for commands, 'quit' to exit")
	replErr := make(chan error, 1)
	go func() {
		repl := &spatialdb.REPL{DB: db}
		replErr <- repl.Run(os.Stdin, os.Stdout)
	}()

	exit := 0
	select {
	case err := <-replErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: %v\n", err)
			exit = 1
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spatialdb: shutting down")
	}
	stop()

	grace, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if estSrv != nil {
		if err := estSrv.Shutdown(grace); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: estimation shutdown: %v\n", err)
		}
	}
	shutdownMetrics(grace, metricsSrv)
	if qlog != nil {
		// Surface a latched write error now — a silently truncated query
		// log would be unreplayable.
		if err := qlog.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: query log: %v\n", err)
			exit = 1
		}
		if err := qlog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: query log close: %v\n", err)
			exit = 1
		}
	}

	if *stats != "" {
		if err := db.SaveStats(*stats); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: saving stats: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// startMetricsServer serves the admin mux on addr in the background,
// or returns nil when addr is empty. A bad listener is fatal: the
// operator asked for telemetry they would silently not get.
func startMetricsServer(reg *telemetry.Registry, addr string) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: metrics listener: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "spatialdb: metrics on http://%s/metrics\n", ln.Addr())
	srv := &http.Server{Handler: metricsMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "spatialdb: metrics server: %v\n", err)
		}
	}()
	return srv
}

// shutdownMetrics drains the metrics server if one is running.
func shutdownMetrics(ctx context.Context, srv *http.Server) {
	if srv == nil {
		return
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: metrics shutdown: %v\n", err)
	}
}

// metricsMux builds the self-contained admin mux.
func metricsMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: /metrics: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: /debug/vars: %v\n", err)
		}
	})
	// The default pprof handlers register on http.DefaultServeMux; wire
	// them explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
