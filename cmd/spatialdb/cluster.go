// Cluster node roles. With -role the binary becomes one node of the
// distributed estimation tier instead of a single-node REPL:
//
//	spatialdb -role worker -cluster-addr localhost:7071
//	spatialdb -role worker -cluster-addr localhost:7072
//	spatialdb -role coordinator -peers localhost:7071,localhost:7072 \
//	    -serve-addr localhost:8080 -shards 4 -replicas 2
//
// A worker serves per-shard estimates from the Min-Skew snapshots the
// coordinator ships to it. The coordinator generates the -cluster-gen
// tables, builds sharded statistics, ships each shard's snapshot to
// its replica workers, and fronts the cluster with the same /estimate
// HTTP API (cache, admission control, request tracing) the
// single-node server exposes — POST /analyze rebuilds and re-ships.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/reqtrace"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/spatialdb"
	"repro/internal/telemetry"
)

// nodeOpts carries the flag values a cluster role reads.
type nodeOpts struct {
	clusterAddr string
	peers       string
	replicas    int
	gen         string
	metricsAddr string
	serveAddr   string
	shards      int
	buckets     int
	regions     int
	ladderRungs int
	noResil     bool
	traceRing   int
	queryLog    string
	stateDir    string
	coordAddr   string
	resyncIvl   time.Duration
}

// runWorker serves the worker protocol (PUT /cluster/snapshot, GET
// /cluster/estimate, GET /cluster/status) on -cluster-addr until
// signalled. A worker starts empty and holds whatever snapshots a
// coordinator ships to it. With -state-dir it persists installs and
// reloads them on boot, serving immediately after a restart; with
// -coordinator it also pulls missing or stale snapshots every
// -resync-interval, so a missed ship heals without a re-ANALYZE.
func runWorker(ctx context.Context, o nodeOpts) int {
	ln, err := net.Listen("tcp", o.clusterAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: cluster listener: %v\n", err)
		return 1
	}
	reg := telemetry.NewRegistry()
	tracer := reqtrace.New(reqtrace.Config{Ring: o.traceRing})
	tracer.EnableTelemetry(reg)
	cfg := cluster.WorkerConfig{
		// The advertised -cluster-addr, not ln.Addr(): the coordinator's
		// partition map names peers by the -peers strings, and pull
		// resync matches manifest assignments against this ID.
		ID:       cluster.NodeID(o.clusterAddr),
		Tracer:   tracer,
		StateDir: o.stateDir,
	}
	if o.coordAddr != "" {
		cfg.Client = &cluster.HTTPCoordinatorClient{Addr: o.coordAddr}
	}
	w := cluster.NewWorker(cfg)
	w.EnableTelemetry(reg)
	if o.stateDir != "" {
		loaded, skipped, err := w.LoadState()
		if err != nil {
			// Serving with no state beats not serving: pull resync (when
			// configured) refills from the coordinator.
			fmt.Fprintf(os.Stderr, "spatialdb: state reload: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "spatialdb: restored %d snapshots from %s (%d files skipped)\n",
				loaded, o.stateDir, skipped)
		}
	}
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	if cfg.Client != nil && o.resyncIvl > 0 {
		go w.RunResyncLoop(loopCtx, o.resyncIvl)
		fmt.Fprintf(os.Stderr, "spatialdb: pulling from coordinator %s every %s\n",
			o.coordAddr, o.resyncIvl)
	}
	metricsSrv := startMetricsServer(reg, o.metricsAddr)

	fmt.Fprintf(os.Stderr, "spatialdb: worker %s awaiting snapshots\n", ln.Addr())
	srv := &http.Server{Handler: w.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	exit := 0
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "spatialdb: worker server: %v\n", err)
			exit = 1
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spatialdb: shutting down")
	}
	grace, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(grace); err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: worker shutdown: %v\n", err)
		exit = 1
	}
	shutdownMetrics(grace, metricsSrv)
	return exit
}

// runCoordinator builds the cluster coordinator, ships statistics to
// the -peers workers, and serves the /estimate API until signalled.
// On -cluster-addr it additionally serves the pull protocol (GET
// /cluster/manifest, GET /cluster/fetch) workers resync from, and
// every -resync-interval it runs an anti-entropy pass that re-ships
// whatever a worker should hold but does not.
func runCoordinator(ctx context.Context, o nodeOpts) int {
	if o.serveAddr == "" {
		fmt.Fprintln(os.Stderr, "spatialdb: -role coordinator needs -serve-addr for the /estimate API")
		return 2
	}
	coord, reg, err := buildCoordinator(ctx, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", o.serveAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: serve listener: %v\n", err)
		return 1
	}
	var clusterSrv *http.Server
	if o.clusterAddr != "" {
		cln, err := net.Listen("tcp", o.clusterAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: cluster listener: %v\n", err)
			return 1
		}
		clusterSrv = &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := clusterSrv.Serve(cln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "spatialdb: manifest server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "spatialdb: manifest/fetch for pull resync on http://%s/cluster/manifest\n", cln.Addr())
	}
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	if o.resyncIvl > 0 {
		go coord.RunReconcileLoop(loopCtx, o.resyncIvl)
		fmt.Fprintf(os.Stderr, "spatialdb: anti-entropy reconcile every %s\n", o.resyncIvl)
	}
	var qlog *reqtrace.QueryLog
	if o.queryLog != "" {
		qlog, err = reqtrace.OpenQueryLog(o.queryLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: query log: %v\n", err)
			return 1
		}
	}
	tracer := reqtrace.New(reqtrace.Config{Ring: o.traceRing, QueryLog: qlog})
	tracer.EnableTelemetry(reg)
	estSrv := serve.New(coord, serve.Config{Tracer: tracer})
	estSrv.EnableTelemetry(reg)
	metricsSrv := startMetricsServer(reg, o.metricsAddr)

	fmt.Fprintf(os.Stderr, "spatialdb: coordinator on http://%s/estimate over %d workers\n",
		ln.Addr(), len(strings.Split(o.peers, ",")))
	errc := make(chan error, 1)
	go func() { errc <- estSrv.Serve(ln) }()

	exit := 0
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "spatialdb: coordinator server: %v\n", err)
			exit = 1
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "spatialdb: shutting down")
	}
	grace, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := estSrv.Shutdown(grace); err != nil {
		fmt.Fprintf(os.Stderr, "spatialdb: coordinator shutdown: %v\n", err)
		exit = 1
	}
	if clusterSrv != nil {
		if err := clusterSrv.Shutdown(grace); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: manifest server shutdown: %v\n", err)
			exit = 1
		}
	}
	shutdownMetrics(grace, metricsSrv)
	if qlog != nil {
		if err := qlog.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: query log: %v\n", err)
			exit = 1
		}
		if err := qlog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spatialdb: query log close: %v\n", err)
			exit = 1
		}
	}
	return exit
}

// buildCoordinator wires a coordinator over the -peers workers,
// generates the -cluster-gen tables, and builds and ships their
// statistics. A failed ship to an unreachable worker does not fail
// startup — the coordinator degrades those shards to map summaries
// until a later /analyze re-ships.
func buildCoordinator(ctx context.Context, o nodeOpts) (*cluster.Coordinator, *telemetry.Registry, error) {
	var nodes []cluster.NodeID
	for _, p := range strings.Split(o.peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			nodes = append(nodes, cluster.NodeID(p))
		}
	}
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("-role coordinator needs -peers host:port[,host:port...]")
	}
	specs, err := parseGenSpecs(o.gen)
	if err != nil {
		return nil, nil, err
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Nodes:     nodes,
		Transport: &cluster.HTTPTransport{},
		Replicas:  o.replicas,
		Shard: shard.Config{
			Shards:      o.shards,
			Buckets:     o.buckets,
			Regions:     o.regions,
			LadderRungs: o.ladderRungs,
			Resilience:  resilience.Config{Disable: o.noResil},
		},
	})
	if err != nil {
		return nil, nil, err
	}
	reg := telemetry.NewRegistry()
	coord.EnableTelemetry(reg)
	for _, s := range specs {
		d, err := spatialdb.Generate(s.kind, s.rows)
		if err != nil {
			return nil, nil, err
		}
		coord.AddTable(s.table, d)
		if err := coord.AnalyzeContext(ctx, s.table); err != nil {
			return nil, nil, fmt.Errorf("analyze %s: %w", s.table, err)
		}
		fmt.Fprintf(os.Stderr, "spatialdb: %s: %d rows sharded and shipped at epoch %d\n",
			s.table, d.N(), coord.Epoch(s.table))
	}
	return coord, reg, nil
}

// genSpec is one parsed -cluster-gen entry.
type genSpec struct {
	table string
	kind  string
	rows  int
}

// parseGenSpecs reads "table=kind:rows[,table=kind:rows...]", e.g.
// "roads=charminar:20000,parks=uniform:5000".
func parseGenSpecs(s string) ([]genSpec, error) {
	var out []genSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		table, rest, ok := strings.Cut(part, "=")
		if !ok || table == "" {
			return nil, fmt.Errorf("bad -cluster-gen entry %q (want table=kind:rows)", part)
		}
		kind, rowsStr, ok := strings.Cut(rest, ":")
		if !ok || kind == "" {
			return nil, fmt.Errorf("bad -cluster-gen entry %q (want table=kind:rows)", part)
		}
		rows, err := strconv.Atoi(rowsStr)
		if err != nil || rows < 1 {
			return nil, fmt.Errorf("bad row count in -cluster-gen entry %q", part)
		}
		out = append(out, genSpec{table: table, kind: kind, rows: rows})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-cluster-gen names no tables")
	}
	return out, nil
}
