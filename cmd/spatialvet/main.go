// Command spatialvet is the repository's multichecker: it runs the
// internal/analysis suite over the module and fails the build on any
// finding. The analyzers enforce invariants go vet cannot see:
//
//	floatcmp    no raw ==/!= on floating-point geometry
//	            (internal/geom, internal/core, internal/grid,
//	            internal/shard)
//	globalrand  no math/rand global source in library code
//	locksafe    no by-value lock copies, no Lock without Unlock
//	errdrop     no silently dropped error results in library code
//	ctxfirst    context.Context is always the first parameter
//	walltime    no wall-clock reads (time.Now & friends,
//	            context.WithTimeout) outside vclock in the serving
//	            stack — transitive, via serialized call-graph facts
//	nilrecv     nil-receiver guards on nil-safe contract types
//	            (internal/telemetry and //spatialvet:nilsafe types)
//	mapiter     no map iteration feeding encoders/reports/slices
//	            without an intervening sort
//	lockhold    no blocking operations (channel ops, sleeps, net
//	            I/O, nested locks) while a mutex is held
//
// Packages load in `go list -deps` dependency order so walltime's
// facts — "this function transitively reaches time.Now" — are always
// computed before the packages that call it are analyzed.
//
// Usage:
//
//	spatialvet [-list] [-only a,b] [-json] [packages...]
//
// With no package arguments it analyzes ./.... Exit status: 0 clean,
// 1 findings, 2 load or type-check failure. With -json each finding
// is one JSON object per line on stdout:
//
//	{"file":"internal/serve/serve.go","line":42,"col":9,"analyzer":"walltime","message":"..."}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/lockhold"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/nilrecv"
	"repro/internal/analysis/walltime"
)

// scope decides which packages an analyzer applies to; path is the
// import path relative to the module root ("" for the module's root
// package).
type scope func(rel string) bool

func all(string) bool { return true }

// library excludes binaries and runnable examples, where global rand
// seeding and console error drops are conventional.
func library(rel string) bool {
	return !strings.HasPrefix(rel, "cmd/") && !strings.HasPrefix(rel, "examples/")
}

// numericCore is the floatcmp audit surface: the geometry primitives
// and the estimator/grid hot paths whose numerics the paper's results
// depend on, plus the sharded tier that merges their partial counts.
// internal/serve is deliberately excluded: its cache keys compare
// quantized lattice coordinates, where exact float equality is the
// point (equal keys = same cache line); the other analyzers still
// cover it via ./....
func numericCore(rel string) bool {
	switch rel {
	case "internal/geom", "internal/core", "internal/grid", "internal/shard":
		return true
	}
	return false
}

// determinismCore is the walltime report surface: the packages whose
// behavior must replay byte-identically under faultsim. The analyzer
// still runs everywhere (facts must cover the whole call graph);
// findings are only raised here.
func determinismCore(rel string) bool {
	switch rel {
	case "internal/serve", "internal/shard", "internal/resilience",
		"internal/faultsim", "internal/catalog", "internal/reqtrace":
		return true
	}
	return false
}

// suite is the analyzer registry with per-analyzer package scopes.
var suite = []struct {
	analyzer *analysis.Analyzer
	applies  scope
}{
	{floatcmp.Analyzer, numericCore},
	{globalrand.Analyzer, library},
	{locksafe.Analyzer, all},
	{errdrop.Analyzer, library},
	{ctxfirst.Analyzer, all},
	{walltime.Analyzer, determinismCore},
	{nilrecv.Analyzer, all},
	{mapiter.Analyzer, all},
	{lockhold.Analyzer, all},
}

// jsonDiag is the -json wire format, one object per line.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line (for CI annotation)")
	flag.Parse()

	if *list {
		for _, s := range suite {
			fmt.Printf("%-12s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
		return
	}

	known := map[string]bool{}
	for _, s := range suite {
		known[s.analyzer.Name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				// A typo'd -only must not silently run zero analyzers.
				fmt.Fprintf(os.Stderr, "spatialvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			selected[name] = true
		}
	}
	enabled := func(name string) bool { return len(selected) == 0 || selected[name] }

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, err := analysis.ModulePath("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}
	// Load failures (bad patterns, type-check errors) are exit 2 —
	// CI must distinguish "the tree has findings" from "the tool
	// could not analyze the tree".
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}

	type located struct {
		file     string
		line     int
		col      int
		analyzer string
		message  string
	}
	var findings []located

	runner := analysis.NewRunner()
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		var analyzers []*analysis.Analyzer
		inScope := map[string]bool{}
		for _, s := range suite {
			if !enabled(s.analyzer.Name) {
				continue
			}
			scoped := s.applies(rel) && !pkg.DepOnly
			// Fact-producing analyzers run everywhere so the call
			// graph is complete; others only where they report.
			if scoped || len(s.analyzer.FactTypes) > 0 {
				analyzers = append(analyzers, s.analyzer)
				inScope[s.analyzer.Name] = scoped
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		diags, err := runner.Run(pkg, analyzers, func(name string) bool { return inScope[name] })
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatialvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, located{
				file:     pos.Filename,
				line:     pos.Line,
				col:      pos.Column,
				analyzer: d.Analyzer,
				message:  d.Message,
			})
		}
	}

	// Packages arrive in dependency order (facts demand it); humans
	// and CI annotations want file order.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})

	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				File: f.file, Line: f.line, Col: f.col,
				Analyzer: f.analyzer, Message: f.message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "spatialvet:", err)
				os.Exit(2)
			}
		} else {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.file, f.line, f.col, f.analyzer, f.message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "spatialvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
