// Command spatialvet is the repository's multichecker: it runs the
// internal/analysis suite over the module and fails the build on any
// finding. The analyzers enforce invariants go vet cannot see:
//
//	floatcmp    no raw ==/!= on floating-point geometry
//	            (internal/geom, internal/core, internal/grid,
//	            internal/shard)
//	globalrand  no math/rand global source in library code
//	locksafe    no by-value lock copies, no Lock without Unlock
//	errdrop     no silently dropped error results in library code
//	ctxfirst    context.Context is always the first parameter
//
// Usage:
//
//	spatialvet [-list] [-only a,b] [packages...]
//
// With no package arguments it analyzes ./....
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/locksafe"
)

// scope decides which packages an analyzer applies to; path is the
// import path relative to the module root ("" for the module's root
// package).
type scope func(rel string) bool

func all(string) bool { return true }

// library excludes binaries and runnable examples, where global rand
// seeding and console error drops are conventional.
func library(rel string) bool {
	return !strings.HasPrefix(rel, "cmd/") && !strings.HasPrefix(rel, "examples/")
}

// numericCore is the floatcmp audit surface: the geometry primitives
// and the estimator/grid hot paths whose numerics the paper's results
// depend on, plus the sharded tier that merges their partial counts.
// internal/serve is deliberately excluded: its cache keys compare
// quantized lattice coordinates, where exact float equality is the
// point (equal keys = same cache line); the other four analyzers
// still cover it via ./....
func numericCore(rel string) bool {
	switch rel {
	case "internal/geom", "internal/core", "internal/grid", "internal/shard":
		return true
	}
	return false
}

// suite is the analyzer registry with per-analyzer package scopes.
var suite = []struct {
	analyzer *analysis.Analyzer
	applies  scope
}{
	{floatcmp.Analyzer, numericCore},
	{globalrand.Analyzer, library},
	{locksafe.Analyzer, all},
	{errdrop.Analyzer, library},
	{ctxfirst.Analyzer, all},
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, s := range suite {
			fmt.Printf("%-12s %s\n", s.analyzer.Name, s.analyzer.Doc)
		}
		return
	}

	known := map[string]bool{}
	for _, s := range suite {
		known[s.analyzer.Name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				// A typo'd -only must not silently run zero analyzers.
				fmt.Fprintf(os.Stderr, "spatialvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			selected[name] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, err := analysis.ModulePath("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialvet:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		var analyzers []*analysis.Analyzer
		for _, s := range suite {
			if len(selected) > 0 && !selected[s.analyzer.Name] {
				continue
			}
			if s.applies(rel) {
				analyzers = append(analyzers, s.analyzer)
			}
		}
		if len(analyzers) == 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatialvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "spatialvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
