// Command experiments regenerates the paper's evaluation: every figure
// and table of Section 5, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments                  # run everything at paper scale
//	experiments -exp fig8        # one experiment
//	experiments -scale 0.1       # 10% of the paper's data/query sizes
//
// Experiments: fig8, fig9, fig10a, fig10b, fig11, table1, the
// ablations (ablation-marginal, ablation-rtree, ablation-refine,
// ablation-local, ablation-optimal) and the extensions (points,
// sequoia, avi, feedback, autotune), or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run")
		scale   = flag.Float64("scale", 1.0, "scale factor for dataset and workload sizes")
		queries = flag.Int("queries", 0, "override query count (0 = paper's 10000 x scale)")
		seed    = flag.Int64("seed", 1999, "random seed")
		format  = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	opts := experiments.Defaults()
	opts.Seed = *seed
	opts.NJRoadSize = scaled(opts.NJRoadSize, *scale)
	opts.CharminarSize = scaled(opts.CharminarSize, *scale)
	opts.Queries = scaled(opts.Queries, *scale)
	if *queries > 0 {
		opts.Queries = *queries
	}

	outputCSV = *format == "csv"
	fmt.Printf("# datasets: NJ-Road-like n=%d, Charminar n=%d; %d queries per workload; seed %d\n\n",
		opts.NJRoadSize, opts.CharminarSize, opts.Queries, opts.Seed)
	start := time.Now()
	env := experiments.NewEnv(opts)
	fmt.Printf("# environment built in %v\n\n", time.Since(start).Round(time.Millisecond))

	runs := map[string]func() error{
		"fig8":              func() error { return one(env.Fig8) },
		"fig9":              func() error { return many(env.Fig9) },
		"fig10a":            func() error { return one(env.Fig10a) },
		"fig10b":            func() error { return one(env.Fig10b) },
		"fig11":             func() error { return one(env.Fig11) },
		"table1":            func() error { return one(env.Table1) },
		"ablation-marginal": func() error { return one(env.AblationMarginal) },
		"ablation-rtree":    func() error { return one(env.AblationRTreeLoad) },
		"ablation-refine":   func() error { return one(env.AblationRefinementSweep) },
		"ablation-local":    func() error { return one(env.AblationLocalGreedy) },
		"ablation-optimal":  func() error { return one(env.AblationOptimal) },
		"points":            func() error { return one(env.PointQueries) },
		"sequoia":           func() error { return one(env.SequoiaPointData) },
		"avi":               func() error { return one(env.AVIComparison) },
		"feedback":          func() error { return one(env.FeedbackAdaptation) },
		"autotune":          func() error { return one(env.AutoTune) },
	}
	order := []string{"fig8", "fig9", "fig10a", "fig10b", "fig11", "table1",
		"ablation-marginal", "ablation-rtree", "ablation-refine", "ablation-local",
		"ablation-optimal", "points", "sequoia", "avi", "feedback", "autotune"}

	if *exp == "all" {
		for _, name := range order {
			runTimed(name, runs[name])
		}
		return
	}
	run, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; available: all %s\n",
			*exp, strings.Join(order, " "))
		os.Exit(2)
	}
	runTimed(*exp, run)
}

func scaled(v int, scale float64) int {
	out := int(float64(v) * scale)
	if out < 1 {
		out = 1
	}
	return out
}

func runTimed(name string, f func() error) {
	start := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("# %s completed in %v\n\n", name, time.Since(start).Round(time.Millisecond))
}

func one(f func() (*experiments.Table, error)) error {
	t, err := f()
	if err != nil {
		return err
	}
	return render(t)
}

// render emits one table in the selected output format.
func render(t *experiments.Table) error {
	if outputCSV {
		return t.RenderCSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

// outputCSV is set from the -format flag before any experiment runs.
var outputCSV bool

func many(f func() ([]*experiments.Table, error)) error {
	ts, err := f()
	if err != nil {
		return err
	}
	for _, t := range ts {
		if err := render(t); err != nil {
			return err
		}
	}
	return nil
}
