// Compare: a full technique shoot-out on a generated road map —
// a miniature of the paper's Figure 8 runnable in seconds.
//
// All seven techniques are built with the same space budget and scored
// with the paper's average relative error metric on workloads of three
// query sizes.
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"time"

	spatialest "repro"
)

func main() {
	const buckets = 100
	data := spatialest.NJRoad(100000)
	fmt.Printf("dataset: %v\n\n", data)

	type technique struct {
		name  string
		build func() (spatialest.Estimator, error)
	}
	techniques := []technique{
		{"Min-Skew", func() (spatialest.Estimator, error) {
			return spatialest.NewMinSkew(data, spatialest.MinSkewOptions{Buckets: buckets, Regions: 10000})
		}},
		{"Equi-Count", func() (spatialest.Estimator, error) { return spatialest.NewEquiCount(data, buckets) }},
		{"Equi-Area", func() (spatialest.Estimator, error) { return spatialest.NewEquiArea(data, buckets) }},
		{"R-Tree", func() (spatialest.Estimator, error) {
			return spatialest.NewRTreeHistogram(data, spatialest.RTreeHistogramOptions{Buckets: buckets})
		}},
		// The paper gives Sample twice the fair space: 4x buckets rects.
		{"Sample", func() (spatialest.Estimator, error) { return spatialest.NewSample(data, 4*buckets, 1) }},
		{"Uniform", func() (spatialest.Estimator, error) { return spatialest.NewUniform(data) }},
		{"Fractal", func() (spatialest.Estimator, error) { return spatialest.NewFractal(data, 2, 8) }},
	}

	qsizes := []float64{0.02, 0.10, 0.25}
	oracle := spatialest.NewOracle(data)

	// Precompute workloads and ground truth, shared by all techniques.
	workloads := make([][]spatialest.Rect, len(qsizes))
	actuals := make([][]int, len(qsizes))
	for i, qs := range qsizes {
		queries, err := spatialest.GenerateQueries(data, spatialest.QueryConfig{
			Count: 2000, QSize: qs, Seed: 99, Clamp: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		workloads[i] = queries
		actuals[i] = make([]int, len(queries))
		for j, q := range queries {
			actuals[i][j] = oracle.Count(q)
		}
	}

	fmt.Println("average relative error per query size:")
	fmt.Printf("%-11s %9s  %8s %8s %8s\n", "technique", "build", "2%", "10%", "25%")
	for _, t := range techniques {
		start := time.Now()
		est, err := t.build()
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)
		row := fmt.Sprintf("%-11s %9s ", t.name, build.Round(time.Millisecond))
		for i := range qsizes {
			ests := make([]float64, len(workloads[i]))
			for j, q := range workloads[i] {
				ests[j] = est.Estimate(q)
			}
			rel, err := spatialest.AvgRelativeError(actuals[i], ests)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %8.3f", rel)
		}
		fmt.Println(row)
	}
	fmt.Println("\nexpected shape (paper Fig. 8): Min-Skew lowest; Equi-*/R-Tree mid; Sample/Uniform/Fractal highest")
}
