// Adaptive: selectivity estimation that learns from executed queries.
//
// Statistics go stale and every summary has blind spots. This example
// wraps a deliberately weak estimator (Uniform) and the strong
// Min-Skew histogram with query-feedback correction grids, replays a
// day of "production" queries — observing each true result size after
// execution — and shows the estimation error before and after on a
// held-out workload.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	spatialest "repro"
)

func main() {
	data := spatialest.Clusters(150000, 10, 50000, 0.025, 10, 200, 11)
	fmt.Printf("dataset: %v\n\n", data)
	oracle := spatialest.NewOracle(data)
	bounds, _ := data.MBR()

	// A training day of queries and a held-out evaluation set.
	train, err := spatialest.GenerateQueries(data, spatialest.QueryConfig{
		Count: 5000, QSize: 0.08, Seed: 1, Clamp: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	test, err := spatialest.GenerateQueries(data, spatialest.QueryConfig{
		Count: 1000, QSize: 0.08, Seed: 2, Clamp: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	actual := make([]int, len(test))
	for i, q := range test {
		actual[i] = oracle.Count(q)
	}

	score := func(e spatialest.Estimator) float64 {
		ests := make([]float64, len(test))
		for i, q := range test {
			ests[i] = e.Estimate(q)
		}
		rel, err := spatialest.AvgRelativeError(actual, ests)
		if err != nil {
			log.Fatal(err)
		}
		return rel
	}

	bases := []struct {
		name  string
		build func() (spatialest.Estimator, error)
	}{
		{"Uniform", func() (spatialest.Estimator, error) { return spatialest.NewUniform(data) }},
		{"Min-Skew", func() (spatialest.Estimator, error) {
			return spatialest.NewMinSkew(data, spatialest.MinSkewOptions{Buckets: 100, Regions: 10000})
		}},
	}

	fmt.Printf("%-10s %10s %10s %12s\n", "base", "before", "after", "improvement")
	for _, b := range bases {
		base, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		fb, err := spatialest.NewFeedback(base, bounds, spatialest.FeedbackConfig{
			GridX: 24, GridY: 24, LearningRate: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		before := score(fb)
		for _, q := range train {
			// In a real system the executor reports this for free after
			// running the query.
			fb.Observe(q, oracle.Count(q))
		}
		after := score(fb)
		fmt.Printf("%-10s %10.3f %10.3f %11.0f%%\n", b.name, before, after, 100*(1-after/before))
	}
	fmt.Println("\nfeedback corrects systematic regional bias for weak and strong bases alike;")
	fmt.Println("the absolute error of the corrected Min-Skew remains an order of magnitude lower")
}
