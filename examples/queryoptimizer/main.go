// Queryoptimizer: the scenario that motivates the paper — a query
// optimizer choosing an access path from a selectivity estimate.
//
// A spatial SELECT over a rectangle predicate can run as a sequential
// scan (cost ~ N) or as an R*-tree index scan (cost ~ result size plus
// the nodes touched). The right choice hinges on the predicate's
// selectivity, which must be estimated before running anything. This
// example builds a Min-Skew histogram, plans 6 queries of different
// sizes, executes both plans, and reports whether the estimate picked
// the cheaper one.
//
// Run with:
//
//	go run ./examples/queryoptimizer
package main

import (
	"fmt"
	"log"

	spatialest "repro"
)

// costModel holds the planner's constants: an index probe touches few
// tuples but pays per-node overhead; a scan touches every tuple
// cheaply.
type costModel struct {
	scanPerTuple  float64
	indexPerTuple float64 // result tuples are more expensive to fetch via index
}

func (c costModel) scanCost(n int) float64 { return c.scanPerTuple * float64(n) }
func (c costModel) indexCost(result float64) float64 {
	return c.indexPerTuple * result
}

func main() {
	// "Parcels" table: clustered development around a few towns.
	data := spatialest.Clusters(200000, 12, 100000, 0.02, 20, 400, 7)
	fmt.Printf("table: %d spatial tuples\n", data.N())

	hist, err := spatialest.NewMinSkew(data, spatialest.MinSkewOptions{Buckets: 100, Regions: 10000})
	if err != nil {
		log.Fatal(err)
	}

	// The execution engine's index.
	index := spatialest.STRLoad(data.Rects(), 64)

	model := costModel{scanPerTuple: 1, indexPerTuple: 25}
	mbr, _ := data.MBR()

	frac := []float64{0.005, 0.02, 0.05, 0.15, 0.40, 0.90}
	fmt.Println("\nquery      est.sel   plan     actual.sel  scan.cost  index.cost  correct?")
	correct := 0
	for i, f := range frac {
		w, h := f*mbr.Width(), f*mbr.Height()
		c := mbr.Center()
		q := spatialest.NewRect(c.X-w/2, c.Y-h/2, c.X+w/2, c.Y+h/2)

		est := hist.Estimate(q)
		planIndex := model.indexCost(est) < model.scanCost(data.N())

		// Execute both ways to get the true costs.
		actual := index.Count(q)
		scanCost := model.scanCost(data.N())
		indexCost := model.indexCost(float64(actual))
		bestIndex := indexCost < scanCost

		plan := "scan"
		if planIndex {
			plan = "index"
		}
		ok := planIndex == bestIndex
		if ok {
			correct++
		}
		fmt.Printf("Q%-9d %7.4f   %-6s   %9.4f  %9.0f  %10.0f  %v\n",
			i+1, est/float64(data.N()), plan,
			float64(actual)/float64(data.N()), scanCost, indexCost, ok)
	}
	fmt.Printf("\nplanner picked the cheaper path for %d/%d queries using %d-bucket Min-Skew estimates\n",
		correct, len(frac), 100)
}
