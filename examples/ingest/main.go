// Ingest: from GIS interchange formats to query planning.
//
// Real spatial data arrives as WKT or GeoJSON, not as rectangle files.
// This example writes a small WKT file and a GeoJSON document,
// ingests both (every geometry reduced to its MBR, exactly how spatial
// systems approximate objects for query processing), registers them in
// a statistics catalog, and answers EXPLAIN-style questions including
// an estimated spatial join between the two layers.
//
// Run with:
//
//	go run ./examples/ingest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	spatialest "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "spatialest-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A "buildings" layer as WKT polygons and a "roads" layer as
	// GeoJSON linestrings, synthesized around a town center.
	rng := rand.New(rand.NewSource(7))
	wktPath := filepath.Join(dir, "buildings.wkt")
	if err := os.WriteFile(wktPath, []byte(buildingsWKT(rng, 5000)), 0o644); err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "roads.geojson")
	if err := os.WriteFile(jsonPath, []byte(roadsGeoJSON(rng, 2000)), 0o644); err != nil {
		log.Fatal(err)
	}

	// Ingest.
	wf, err := os.Open(wktPath)
	if err != nil {
		log.Fatal(err)
	}
	buildings, err := spatialest.ReadWKTDataset(wf)
	wf.Close()
	if err != nil {
		log.Fatal(err)
	}
	jf, err := os.Open(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	roads, err := spatialest.ReadGeoJSONDataset(jf)
	jf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d building footprints (WKT) and %d road segments (GeoJSON)\n\n",
		buildings.N(), roads.N())

	// Statistics catalog over both layers.
	cat := spatialest.NewCatalog(spatialest.CatalogConfig{Buckets: 100, Regions: 10000})
	if err := cat.Analyze("buildings", buildings); err != nil {
		log.Fatal(err)
	}
	if err := cat.Analyze("roads", roads); err != nil {
		log.Fatal(err)
	}

	// EXPLAIN a range predicate against each layer.
	downtown := spatialest.NewRect(4000, 4000, 6000, 6000)
	for _, layer := range []struct {
		name string
		d    *spatialest.Dataset
	}{{"buildings", buildings}, {"roads", roads}} {
		est, err := cat.Estimate(layer.name, downtown)
		if err != nil {
			log.Fatal(err)
		}
		oracle := spatialest.NewOracle(layer.d)
		fmt.Printf("downtown ∩ %-10s estimate=%7.1f exact=%6d\n",
			layer.name, est, oracle.Count(downtown))
	}

	// Estimated spatial join: buildings touching roads.
	joinEst, err := spatialest.EstimateJoin(cat.Histogram("buildings"), cat.Histogram("roads"))
	if err != nil {
		log.Fatal(err)
	}
	index := spatialest.STRLoad(roads.Rects(), 32)
	exactJoin := 0
	for _, b := range buildings.Rects() {
		exactJoin += index.Count(b)
	}
	fmt.Printf("\nbuildings ⋈ roads     estimate=%7.1f exact=%6d\n", joinEst, exactJoin)
}

// buildingsWKT emits n clustered building footprints as WKT polygons.
func buildingsWKT(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString("# synthetic building footprints\n")
	for i := 0; i < n; i++ {
		// Gaussian cluster around the town center with a sprawl tail.
		cx := 5000 + rng.NormFloat64()*1200
		cy := 5000 + rng.NormFloat64()*1200
		w := 10 + rng.Float64()*30
		h := 10 + rng.Float64()*30
		fmt.Fprintf(&b, "POLYGON ((%.1f %.1f, %.1f %.1f, %.1f %.1f, %.1f %.1f, %.1f %.1f))\n",
			cx, cy, cx+w, cy, cx+w, cy+h, cx, cy+h, cx, cy)
	}
	return b.String()
}

// roadsGeoJSON emits n road segments as a GeoJSON FeatureCollection.
func roadsGeoJSON(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.WriteString(`{"type":"FeatureCollection","features":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		x := rng.Float64() * 10000
		y := 5000 + rng.NormFloat64()*2000
		fmt.Fprintf(&b,
			`{"type":"Feature","geometry":{"type":"LineString","coordinates":[[%.1f,%.1f],[%.1f,%.1f]]}}`,
			x, y, x+40+rng.Float64()*60, y+rng.NormFloat64()*20)
	}
	b.WriteString("]}")
	return b.String()
}
