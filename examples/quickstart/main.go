// Quickstart: build a Min-Skew histogram over a spatial dataset and
// estimate the selectivity of a few queries, comparing against exact
// counts.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	spatialest "repro"
)

func main() {
	// A synthetic stand-in for a state's road segments: ~50K bounding
	// boxes with realistic urban placement skew.
	data := spatialest.NJRoad(50000)
	fmt.Printf("dataset: %v\n", data)

	// Build the paper's Min-Skew histogram: 100 buckets constructed
	// over a 10,000-region density grid (the paper's defaults).
	est, err := spatialest.NewMinSkew(data, spatialest.MinSkewOptions{
		Buckets: 100,
		Regions: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimator: %v\n\n", est)

	// The estimator answers from ~800 words of state; the oracle scans
	// the data. Compare them on a few queries.
	oracle := spatialest.NewOracle(data)
	mbr, _ := data.MBR()
	queries := []spatialest.Rect{
		spatialest.NewRect(mbr.MinX, mbr.MinY, mbr.MinX+0.2*mbr.Width(), mbr.MinY+0.2*mbr.Height()),
		spatialest.NewRect(mbr.MinX+0.4*mbr.Width(), mbr.MinY+0.4*mbr.Height(),
			mbr.MinX+0.6*mbr.Width(), mbr.MinY+0.6*mbr.Height()),
		spatialest.NewRect(mbr.MinX, mbr.MinY, mbr.MaxX, mbr.MaxY),
		spatialest.PointQuery(mbr.Center().X, mbr.Center().Y),
	}
	fmt.Println("query                                    estimate      exact   rel.err")
	for _, q := range queries {
		e := est.Estimate(q)
		x := oracle.Count(q)
		rel := 0.0
		if x > 0 {
			rel = (e - float64(x)) / float64(x)
		}
		fmt.Printf("%-40v %9.1f %10d   %+6.1f%%\n", q, e, x, 100*rel)
	}
}
