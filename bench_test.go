// Benchmarks regenerating the paper's evaluation, one per table and
// figure. Each benchmark measures the dominant cost of its experiment
// (construction or estimation) and attaches the experiment's headline
// accuracy numbers as custom metrics (relerr*), so a -bench run yields
// the same series the paper plots:
//
//	BenchmarkFig8QuerySize     error vs. query size per technique
//	BenchmarkFig9Buckets       error vs. bucket count (Min-Skew)
//	BenchmarkFig10Regions      Min-Skew error vs. grid regions (NJ + Charminar)
//	BenchmarkFig11Refinement   error vs. progressive refinements
//	BenchmarkTable1Construction  construction time per technique and input size
//
// The full paper-scale harness is `go run ./cmd/experiments`; the
// benchmarks run on moderately scaled datasets so the whole suite
// completes in minutes.
package spatialest_test

import (
	"sync"
	"testing"

	spatialest "repro"
)

// benchScale holds the shared, lazily-built benchmark environment.
var benchScale struct {
	once      sync.Once
	njroad    *spatialest.Dataset
	charminar *spatialest.Dataset
	njOracle  spatialest.Oracle
	chOracle  spatialest.Oracle
}

func benchEnv() *struct {
	once      sync.Once
	njroad    *spatialest.Dataset
	charminar *spatialest.Dataset
	njOracle  spatialest.Oracle
	chOracle  spatialest.Oracle
} {
	benchScale.once.Do(func() {
		benchScale.njroad = spatialest.NJRoad(60000)
		benchScale.charminar = spatialest.Charminar(20000, 10000, 100, 1999)
		benchScale.njOracle = spatialest.NewOracle(benchScale.njroad)
		benchScale.chOracle = spatialest.NewOracle(benchScale.charminar)
	})
	return &benchScale
}

// relErr scores an estimator on a workload against the oracle.
func relErr(b *testing.B, d *spatialest.Dataset, o spatialest.Oracle, est spatialest.Estimator, qsize float64) float64 {
	b.Helper()
	queries, err := spatialest.GenerateQueries(d, spatialest.QueryConfig{
		Count: 600, QSize: qsize, Seed: 7, Clamp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	actual := make([]int, len(queries))
	ests := make([]float64, len(queries))
	for i, q := range queries {
		actual[i] = o.Count(q)
		ests[i] = est.Estimate(q)
	}
	rel, err := spatialest.AvgRelativeError(actual, ests)
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

// buildBenchTechnique mirrors the experiment harness's construction
// rules (Sample gets the paper's liberal 4x-buckets rectangles).
func buildBenchTechnique(b *testing.B, d *spatialest.Dataset, name string, buckets int) spatialest.Estimator {
	b.Helper()
	var est spatialest.Estimator
	var err error
	switch name {
	case "Min-Skew":
		est, err = spatialest.NewMinSkew(d, spatialest.MinSkewOptions{Buckets: buckets, Regions: 10000})
	case "Equi-Area":
		est, err = spatialest.NewEquiArea(d, buckets)
	case "Equi-Count":
		est, err = spatialest.NewEquiCount(d, buckets)
	case "R-Tree":
		est, err = spatialest.NewRTreeHistogram(d, spatialest.RTreeHistogramOptions{Buckets: buckets})
	case "Sample":
		est, err = spatialest.NewSample(d, 4*buckets, 7)
	case "Uniform":
		est, err = spatialest.NewUniform(d)
	case "Fractal":
		est, err = spatialest.NewFractal(d, 2, 8)
	}
	if err != nil {
		b.Fatal(err)
	}
	return est
}

// BenchmarkFig8QuerySize reproduces Figure 8: per technique, the
// estimation throughput is measured and the relative errors at 2%, 10%
// and 25% query sizes are attached as metrics.
func BenchmarkFig8QuerySize(b *testing.B) {
	env := benchEnv()
	for _, name := range []string{"Min-Skew", "Equi-Count", "Equi-Area", "R-Tree", "Sample", "Uniform", "Fractal"} {
		b.Run(name, func(b *testing.B) {
			est := buildBenchTechnique(b, env.njroad, name, 100)
			queries, err := spatialest.GenerateQueries(env.njroad, spatialest.QueryConfig{
				Count: 256, QSize: 0.10, Seed: 3, Clamp: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.Estimate(queries[i%len(queries)])
			}
			b.StopTimer()
			// Metrics must be reported after ResetTimer, which clears
			// them.
			for _, qp := range []struct {
				label string
				size  float64
			}{{"relerr2pct", 0.02}, {"relerr10pct", 0.10}, {"relerr25pct", 0.25}} {
				b.ReportMetric(relErr(b, env.njroad, env.njOracle, est, qp.size), qp.label)
			}
		})
	}
}

// BenchmarkFig9Buckets reproduces Figure 9 for the champion technique:
// Min-Skew construction time per bucket budget with the errors at the
// paper's two plotted query sizes attached.
func BenchmarkFig9Buckets(b *testing.B) {
	env := benchEnv()
	for _, buckets := range []int{50, 100, 200, 350, 500, 750} {
		b.Run(benchName("buckets", buckets), func(b *testing.B) {
			var est spatialest.Estimator
			for i := 0; i < b.N; i++ {
				var err error
				est, err = spatialest.NewMinSkew(env.njroad, spatialest.MinSkewOptions{
					Buckets: buckets, Regions: 10000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(relErr(b, env.njroad, env.njOracle, est, 0.05), "relerr5pct")
			b.ReportMetric(relErr(b, env.njroad, env.njOracle, est, 0.25), "relerr25pct")
		})
	}
}

// BenchmarkFig10Regions reproduces Figures 10(a) and 10(b): Min-Skew
// construction per grid resolution on both datasets, with the two
// query-size errors attached.
func BenchmarkFig10Regions(b *testing.B) {
	env := benchEnv()
	datasets := []struct {
		label  string
		d      *spatialest.Dataset
		oracle spatialest.Oracle
	}{
		{"NJRoad", env.njroad, env.njOracle},
		{"Charminar", env.charminar, env.chOracle},
	}
	for _, ds := range datasets {
		for _, regions := range []int{1000, 10000, 30000, 90000} {
			b.Run(ds.label+"/"+benchName("regions", regions), func(b *testing.B) {
				var est spatialest.Estimator
				for i := 0; i < b.N; i++ {
					var err error
					est, err = spatialest.NewMinSkew(ds.d, spatialest.MinSkewOptions{
						Buckets: 100, Regions: regions,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(relErr(b, ds.d, ds.oracle, est, 0.05), "relerr5pct")
				b.ReportMetric(relErr(b, ds.d, ds.oracle, est, 0.25), "relerr25pct")
			})
		}
	}
}

// BenchmarkFig11Refinement reproduces Figure 11: Min-Skew with
// progressive refinement on Charminar at 30,000 regions, large
// queries.
func BenchmarkFig11Refinement(b *testing.B) {
	env := benchEnv()
	for _, refs := range []int{0, 1, 2, 4, 6, 8} {
		b.Run(benchName("refinements", refs), func(b *testing.B) {
			var est spatialest.Estimator
			for i := 0; i < b.N; i++ {
				var err error
				est, err = spatialest.NewMinSkew(env.charminar, spatialest.MinSkewOptions{
					Buckets: 100, Regions: 30000, Refinements: refs,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(relErr(b, env.charminar, env.chOracle, est, 0.25), "relerr25pct")
		})
	}
}

// BenchmarkTable1Construction reproduces Table 1: construction time
// per technique at two input sizes and two bucket budgets. ns/op is
// the table cell.
func BenchmarkTable1Construction(b *testing.B) {
	sizes := map[string]*spatialest.Dataset{
		"N=50K": spatialest.NJRoad(50000),
		// The paper's 400K column; scaled to 200K to keep the R-Tree
		// cell affordable in a default -benchtime run.
		"N=200K": spatialest.NJRoad(200000),
	}
	for _, sizeLabel := range []string{"N=50K", "N=200K"} {
		d := sizes[sizeLabel]
		for _, buckets := range []int{100, 750} {
			for _, name := range []string{"Min-Skew", "Equi-Area", "Equi-Count", "R-Tree", "Uniform"} {
				b.Run(sizeLabel+"/"+benchName("b", buckets)+"/"+name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						buildBenchTechnique(b, d, name, buckets)
					}
				})
			}
		}
	}
}

// BenchmarkMinSkewEstimate isolates per-query estimation latency at
// the paper's default configuration.
func BenchmarkMinSkewEstimate(b *testing.B) {
	env := benchEnv()
	est, err := spatialest.NewMinSkew(env.njroad, spatialest.MinSkewOptions{Buckets: 100, Regions: 10000})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := spatialest.GenerateQueries(env.njroad, spatialest.QueryConfig{
		Count: 1024, QSize: 0.10, Seed: 5, Clamp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(queries[i%len(queries)])
	}
}

// BenchmarkOracleCount measures the exact oracle the experiments use
// for ground truth.
func BenchmarkOracleCount(b *testing.B) {
	env := benchEnv()
	queries, err := spatialest.GenerateQueries(env.njroad, spatialest.QueryConfig{
		Count: 1024, QSize: 0.10, Seed: 5, Clamp: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.njOracle.Count(queries[i%len(queries)])
	}
}

func benchName(prefix string, v int) string {
	// Avoid fmt in hot bench setup; this is cold code but keeps the
	// dependency list small.
	digits := [20]byte{}
	i := len(digits)
	if v == 0 {
		i--
		digits[i] = '0'
	}
	for v > 0 {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return prefix + "=" + string(digits[i:])
}
